// Campaign + oracle tests: the coverage-guided campaign exercises every
// mutation class, detects and localizes what it breaks, and never
// reports a false positive, a conservation violation, or a
// sequential/parallel verdict divergence.
#include "fuzz/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/coverage.hpp"
#include "fuzz/scheduler.hpp"
#include "fuzz/scorecard.hpp"

namespace veridp {
namespace fuzz {
namespace {

TEST(FuzzCampaign, SingleSeedSweepCoversAllClassesCleanly) {
  CampaignOptions opts;
  opts.seeds = {1};
  opts.budget_per_seed = 17;  // 15 single-class + flood + one composition
  const CampaignOutcome outcome = run_campaign(opts);
  const Scorecard& card = outcome.card;

  ASSERT_EQ(outcome.runs.size(), 17u);
  EXPECT_TRUE(card.clean()) << to_json(card);
  EXPECT_EQ(card.false_positives, 0u);
  EXPECT_EQ(card.conservation_violations, 0u);
  EXPECT_EQ(card.parallel_mismatches, 0u);

  // Every mutation class was scheduled at least once...
  for (std::size_t i = 0; i < kNumMutationClasses; ++i)
    EXPECT_GE(card.per_class[i].scheduled_runs, 1u)
        << to_string(static_cast<MutationClass>(i));
  // ...every harmful class produced at least one probe-visible fault...
  for (std::size_t i = 0; i < kNumMutationClasses; ++i) {
    if (is_harmful(static_cast<MutationClass>(i))) {
      EXPECT_GE(card.per_class[i].effectful_runs, 1u)
          << to_string(static_cast<MutationClass>(i));
    }
  }
  // ...and every effectful harmful run was detected and localized.
  EXPECT_GT(card.harmful_runs, 0u);
  EXPECT_EQ(card.detected_runs, card.harmful_runs) << to_json(card);
  EXPECT_EQ(card.localized_runs, card.detected_runs) << to_json(card);
  EXPECT_EQ(card.blamed_correct, card.blamed_total);

  EXPECT_GT(card.coverage_keys, 0u);
  EXPECT_EQ(card.coverage_keys, outcome.coverage.size());
  EXPECT_FALSE(outcome.interesting.empty());
}

TEST(FuzzCampaign, BenignRunsNeverDetectAnything) {
  const ScheduleGenerator gen(1);
  const CampaignRunner runner;
  // Indices 9..14 are the single-class transport/churn schedules, 15 is
  // the heavy benign flood.
  for (int index = 9; index <= 15; ++index) {
    const RunResult r = runner.run(gen.generate(index));
    EXPECT_EQ(r.harmful_effectful, 0) << "index " << index;
    EXPECT_FALSE(r.detected) << "index " << index;
    EXPECT_EQ(r.false_positives, 0u) << "index " << index;
    EXPECT_EQ(r.failed_verdicts, 0u) << "index " << index;
    EXPECT_TRUE(r.conserved);
    EXPECT_TRUE(r.parallel_match);
    EXPECT_TRUE(r.verdict_kinds_seen & kSawOk);
  }
}

TEST(FuzzCampaign, HarmfulRunCarriesGroundTruthAndBlame) {
  const RunResult r =
      CampaignRunner().run(ScheduleGenerator(1).generate(0));  // drop_rule
  ASSERT_GT(r.harmful_effectful, 0);
  ASSERT_TRUE(r.detected);
  EXPECT_GE(r.detect_round, 0);
  EXPECT_GE(r.first_effectful_round, 0);
  EXPECT_GE(r.time_to_detection(), 0);
  ASSERT_FALSE(r.faulty_switches.empty());
  ASSERT_FALSE(r.blamed.empty());
  EXPECT_TRUE(r.localized);
  // A failure observation set the mismatch/no-path coverage bits.
  EXPECT_NE(r.verdict_kinds_seen & (kSawNoPath | kSawTagMismatch), 0);
  EXPECT_TRUE(r.regimes_seen & kSawNormal);
}

TEST(FuzzCampaign, MalformedScheduleValuesAreClampedNotFatal) {
  // A mutated schedule may carry out-of-range knobs; the runner clamps
  // rather than crashing or hanging.
  FuzzSchedule s;
  s.seed = 3;
  s.topo = "no_such_topo";  // falls back to linear
  s.rounds = 10000;
  s.copies = 10000;
  s.probe_stride = 0;
  s.actions.push_back({-5, MutationClass::kDropRule, 1000, 1000, 1000, 0});
  const RunResult r = CampaignRunner().run(s);
  // The schedule is kept verbatim (replay fidelity), but the run obeys
  // the clamps: count executed rounds in the trace.
  int rounds_run = r.trace.rfind("round ", 0) == 0 ? 1 : 0;
  for (std::size_t at = r.trace.find("\nround "); at != std::string::npos;
       at = r.trace.find("\nround ", at + 1))
    ++rounds_run;
  EXPECT_GT(rounds_run, 0);
  EXPECT_LE(rounds_run, 32);
  EXPECT_TRUE(r.conserved);
  EXPECT_EQ(r.false_positives, 0u);
}

TEST(FuzzCoverage, KeysFoldClassTopoVerdictRegime) {
  CoverageMap map;
  FuzzSchedule s;
  s.topo = "fat4";
  s.actions.push_back({1, MutationClass::kDropRule, 0, 0, 0, 0});
  s.actions.push_back({2, MutationClass::kDropRule, 1, 0, 0, 0});  // dup class
  s.actions.push_back({2, MutationClass::kChurn, 0, 0, 0, 0});

  // 2 distinct classes x 2 verdict bits x 1 regime bit = 4 keys.
  EXPECT_EQ(map.add_run(s, kSawOk | kSawTagMismatch, kSawNormal), 4u);
  EXPECT_EQ(map.size(), 4u);
  // Same observations again: nothing fresh.
  EXPECT_EQ(map.add_run(s, kSawOk | kSawTagMismatch, kSawNormal), 0u);
  // A new regime doubles the key set.
  EXPECT_EQ(map.add_run(s, kSawOk | kSawTagMismatch, kSawSoft), 4u);
  // Different topology, same everything else: fresh keys.
  s.topo = "linear";
  EXPECT_GT(map.add_run(s, kSawOk, kSawNormal), 0u);
}

TEST(FuzzCampaign, GuidedMutationSlotsDrawFromTheCorpus) {
  CampaignOptions opts;
  opts.seeds = {1};
  opts.budget_per_seed = 20;  // indices 17 and 19 are mutation slots
  const CampaignOutcome outcome = run_campaign(opts);
  ASSERT_EQ(outcome.runs.size(), 20u);
  // A mutated schedule derives its seed from its base via "/mut/", so
  // it cannot collide with any generate() seed; detecting one is enough
  // to prove the guided path executed.
  const ScheduleGenerator gen(1);
  bool saw_mutation = false;
  for (int index : {17, 19}) {
    const auto& run = outcome.runs[static_cast<std::size_t>(index)];
    if (!(run.schedule == gen.generate(index))) saw_mutation = true;
  }
  EXPECT_TRUE(saw_mutation);
  EXPECT_TRUE(outcome.card.clean()) << to_json(outcome.card);
}

TEST(FuzzScheduler, CrossoverIsDeterministicAndSplices) {
  const ScheduleGenerator gen(5);
  const FuzzSchedule a = gen.generate(16);  // multi-fault compositions
  const FuzzSchedule b = gen.generate(17);
  ASSERT_FALSE(a.actions.empty());
  ASSERT_FALSE(b.actions.empty());

  const FuzzSchedule x1 = gen.crossover(a, b, 23);
  const FuzzSchedule x2 = gen.crossover(a, b, 23);
  EXPECT_EQ(serialize(x1), serialize(x2)) << "crossover must be pure";
  EXPECT_TRUE(x1 == x2);

  // Different indices draw different cut points (eventually).
  bool varied = false;
  for (int index = 24; index < 40 && !varied; ++index)
    varied = !(gen.crossover(a, b, index) == x1);
  EXPECT_TRUE(varied);

  // The child runs parent A's environment, derives a fresh seed, and
  // every action is a verbatim splice from one of the parents (modulo
  // the round clamp into A's window).
  EXPECT_EQ(x1.topo, a.topo);
  EXPECT_EQ(x1.rounds, a.rounds);
  EXPECT_NE(x1.seed, a.seed);
  EXPECT_NE(x1.seed, b.seed);
  for (const FuzzAction& act : x1.actions) {
    const auto matches = [&act](const FuzzAction& p) {
      return p.cls == act.cls && p.a == act.a && p.b == act.b;
    };
    const bool from_a =
        std::any_of(a.actions.begin(), a.actions.end(), matches);
    const bool from_b =
        std::any_of(b.actions.begin(), b.actions.end(), matches);
    EXPECT_TRUE(from_a || from_b);
    // A's prefix is copied verbatim (whatever rounds A used); B's
    // suffix is clamped into A's mutation window — so nothing may land
    // beyond A's rounds.
    EXPECT_LE(act.round, a.rounds);
  }
}

TEST(FuzzCampaign, CrossoverSlotsRunAndReplayExactly) {
  CampaignOptions opts;
  opts.seeds = {1};
  opts.budget_per_seed = 20;  // index 19 is the crossover slot (19 % 4 == 3)
  const CampaignOutcome a = run_campaign(opts);
  const CampaignOutcome b = run_campaign(opts);
  ASSERT_EQ(a.runs.size(), 20u);
  // Campaign-level determinism with the crossover slot in play.
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].digest, b.runs[i].digest) << "run " << i;
    EXPECT_TRUE(a.runs[i].schedule == b.runs[i].schedule);
  }
  EXPECT_TRUE(a.card.clean()) << to_json(a.card);
}

TEST(FuzzCampaign, WallClockBudgetModeTerminatesAndStaysClean) {
  CampaignOptions opts;
  opts.seeds = {1, 2};
  opts.budget_seconds = 1;
  opts.budget_per_seed = 0;  // ignored in wall-clock mode
  const CampaignOutcome outcome = run_campaign(opts);
  // At least one full round-robin sweep fits a 1 s budget (a run takes
  // milliseconds), and the deadline stops the campaign promptly.
  EXPECT_GE(outcome.runs.size(), 2u);
  EXPECT_TRUE(outcome.card.clean()) << to_json(outcome.card);
  // Every recorded run is individually replayable: re-running its
  // schedule reproduces the digest (wall-clock mode only changes how
  // many runs happen, never what each run does).
  const CampaignRunner runner;
  const RunResult& last = outcome.runs.back();
  EXPECT_EQ(runner.run(last.schedule).digest, last.digest);
}

}  // namespace
}  // namespace fuzz
}  // namespace veridp
