// Bloom-filter tag tests: no false negatives (ever), OR composition,
// width sweep for false-positive behaviour.
#include "bloom/bloom.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace veridp {
namespace {

Hop random_hop(Rng& rng) {
  return Hop{static_cast<PortId>(rng.uniform(1, 48)),
             static_cast<SwitchId>(rng.uniform(0, 200)),
             static_cast<PortId>(rng.uniform(1, 48))};
}

TEST(BloomTag, StartsEmpty) {
  const BloomTag t(16);
  EXPECT_TRUE(t.zero());
  EXPECT_EQ(t.popcount(), 0);
  EXPECT_EQ(t.bits(), 16);
  EXPECT_EQ(t.str(), "0000000000000000");
}

TEST(BloomTag, InsertSetsAtMostThreeBits) {
  BloomTag t(64);
  t.insert(Hop{1, 2, 3});
  EXPECT_GE(t.popcount(), 1);
  EXPECT_LE(t.popcount(), BloomTag::kNumHashes);
}

TEST(BloomTag, NoFalseNegatives) {
  Rng rng(11);
  for (int bits : {8, 16, 32, 64}) {
    for (int trial = 0; trial < 50; ++trial) {
      BloomTag t(bits);
      std::vector<Hop> hops;
      for (int i = 0; i < 6; ++i) {
        hops.push_back(random_hop(rng));
        t.insert(hops.back());
      }
      for (const Hop& h : hops)
        EXPECT_TRUE(t.may_contain(h)) << "bits=" << bits;
    }
  }
}

TEST(BloomTag, OfHopEqualsInsert) {
  const Hop h{3, 7, 1};
  BloomTag t(16);
  t.insert(h);
  EXPECT_EQ(t, BloomTag::of_hop(h, 16));
}

TEST(BloomTag, OrIsUnion) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const Hop a = random_hop(rng), b = random_hop(rng);
    const BloomTag ta = BloomTag::of_hop(a, 16);
    const BloomTag tb = BloomTag::of_hop(b, 16);
    const BloomTag both = ta | tb;
    EXPECT_TRUE(both.may_contain(a));
    EXPECT_TRUE(both.may_contain(b));
    BloomTag acc(16);
    acc |= ta;
    acc |= tb;
    EXPECT_EQ(acc, both);
  }
}

TEST(BloomTag, OrIsCommutativeAssociativeIdempotent) {
  Rng rng(31);
  const BloomTag a = BloomTag::of_hop(random_hop(rng), 16);
  const BloomTag b = BloomTag::of_hop(random_hop(rng), 16);
  const BloomTag c = BloomTag::of_hop(random_hop(rng), 16);
  EXPECT_EQ((a | b), (b | a));
  EXPECT_EQ(((a | b) | c), (a | (b | c)));
  EXPECT_EQ((a | a), a);
}

TEST(BloomTag, DistinctHopsUsuallyDistinctTags) {
  // Not a strict guarantee, but with 64 bits, distinct hops should
  // nearly always produce distinct masks.
  Rng rng(41);
  int collisions = 0;
  for (int t = 0; t < 500; ++t) {
    const Hop a = random_hop(rng);
    Hop b = random_hop(rng);
    if (a == b) continue;
    if (BloomTag::of_hop(a, 64) == BloomTag::of_hop(b, 64)) ++collisions;
  }
  EXPECT_LT(collisions, 5);
}

TEST(BloomTag, DropPortHopIsEncodable) {
  BloomTag t(16);
  const Hop drop{3, 9, kDropPort};
  t.insert(drop);
  EXPECT_TRUE(t.may_contain(drop));
  EXPECT_FALSE(t.zero());
}

TEST(BloomTag, ClearResets) {
  BloomTag t(16);
  t.insert(Hop{1, 1, 2});
  EXPECT_FALSE(t.zero());
  t.clear();
  EXPECT_TRUE(t.zero());
}

// False-positive rate must decrease with filter width (the Figure-12
// mechanism). We measure P[random absent hop passes] for a 5-hop tag.
class BloomFp : public ::testing::TestWithParam<int> {};

TEST_P(BloomFp, FalsePositiveRateReasonable) {
  const int bits = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits) * 1000 + 5);
  int fp = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    BloomTag tag(bits);
    std::vector<Hop> in;
    for (int i = 0; i < 5; ++i) {
      in.push_back(random_hop(rng));
      tag.insert(in.back());
    }
    Hop probe = random_hop(rng);
    while (std::find(in.begin(), in.end(), probe) != in.end())
      probe = random_hop(rng);
    if (tag.may_contain(probe)) ++fp;
  }
  const double rate = static_cast<double>(fp) / kTrials;
  // Loose analytic envelope: k=3 hashes, 5 elements.
  if (bits <= 8) {
    EXPECT_GT(rate, 0.2);
  }
  if (bits >= 32) {
    EXPECT_LT(rate, 0.25);
  }
  if (bits >= 64) {
    EXPECT_LT(rate, 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BloomFp, ::testing::Values(8, 16, 24, 32, 48, 64));

// Monotonicity across the Figure-12 sweep, aggregated.
TEST(BloomTag, WiderFiltersHaveFewerFalsePositives) {
  Rng rng(77);
  std::vector<int> widths{8, 16, 32, 64};
  std::vector<double> rates;
  for (int bits : widths) {
    int fp = 0;
    const int kTrials = 3000;
    Rng local(1234);  // same hop sequence for every width
    for (int t = 0; t < kTrials; ++t) {
      BloomTag tag(bits);
      std::vector<Hop> in;
      for (int i = 0; i < 5; ++i) {
        in.push_back(random_hop(local));
        tag.insert(in.back());
      }
      Hop probe = random_hop(local);
      while (std::find(in.begin(), in.end(), probe) != in.end())
        probe = random_hop(local);
      if (tag.may_contain(probe)) ++fp;
    }
    rates.push_back(static_cast<double>(fp) / kTrials);
  }
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_LT(rates[i], rates[i - 1] + 0.02) << "width " << widths[i];
  EXPECT_LT(rates.back(), rates.front());
}

TEST(BloomTag, HopMasksMatchScalarOfHopAtEveryWidth) {
  Rng rng(99);
  std::vector<Hop> hops;
  for (int i = 0; i < 400; ++i) hops.push_back(random_hop(rng));
  for (const int bits : {8, 16, 31, 32, 64}) {
    std::vector<std::uint64_t> masks(hops.size());
    BloomTag::hop_masks(hops.data(), hops.size(), bits, masks.data());
    for (std::size_t i = 0; i < hops.size(); ++i)
      EXPECT_EQ(masks[i], BloomTag::of_hop(hops[i], bits).value())
          << "hop " << i << " width " << bits;
  }
}

TEST(BloomTag, OfPathEqualsIncrementalInserts) {
  Rng rng(7);
  std::vector<Hop> hops;
  BloomTag incremental(16);
  for (int i = 0; i < 300; ++i) {  // crosses the kernel's 256-chunk seam
    hops.push_back(random_hop(rng));
    incremental.insert(hops.back());
  }
  EXPECT_EQ(BloomTag::of_path(hops.data(), hops.size(), 16), incremental);
  EXPECT_EQ(BloomTag::of_path(hops.data(), 0, 16), BloomTag(16));
}

TEST(BloomTag, MembershipColumnKernelsMatchMayContain) {
  Rng rng(3);
  std::vector<Hop> hops;
  for (int i = 0; i < 64; ++i) hops.push_back(random_hop(rng));

  BloomTag tag(16);
  for (int i = 0; i < 5; ++i) tag.insert(hops[static_cast<std::size_t>(i)]);

  // One tag against a mask column (the localizer's shape).
  std::vector<std::uint64_t> masks(hops.size());
  BloomTag::hop_masks(hops.data(), hops.size(), 16, masks.data());
  std::vector<std::uint8_t> member(hops.size());
  bloom_contains_masks(tag.value(), masks.data(), hops.size(), member.data());
  for (std::size_t i = 0; i < hops.size(); ++i)
    EXPECT_EQ(member[i] != 0, tag.may_contain(hops[i])) << "hop " << i;

  // One hop's mask against a tag column (the SoA pipeline's shape).
  std::vector<std::uint64_t> tags;
  std::vector<bool> expect;
  for (std::size_t i = 0; i < hops.size(); i += 2) {
    const BloomTag t = BloomTag::of_hop(hops[i], 16) |
                       BloomTag::of_hop(hops[(i + 1) % hops.size()], 16);
    tags.push_back(t.value());
    expect.push_back(t.may_contain(hops[0]));
  }
  std::vector<std::uint8_t> got(tags.size());
  bloom_tags_contain(tags.data(), tags.size(), masks[0], got.data());
  for (std::size_t i = 0; i < tags.size(); ++i)
    EXPECT_EQ(got[i] != 0, expect[i]) << "tag " << i;
}

}  // namespace
}  // namespace veridp
