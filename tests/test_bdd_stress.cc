// BDD engine stress / scale tests: behaviours that only show up beyond
// toy sizes — canonical forms under heavy sharing, prefix-chain growth,
// cache correctness across interleaved operations.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "common/rng.hpp"
#include "header/header_set.hpp"

namespace veridp {
namespace {

TEST(BddStress, ThousandPrefixesStayLinearish) {
  // Prefix predicates are the path table's bread and butter: a union of
  // n disjoint /24s must not blow up the node count.
  HeaderSpace space;
  HeaderSet acc = space.none();
  for (int i = 0; i < 1000; ++i) {
    const Prefix p{Ipv4::of(10, static_cast<std::uint8_t>(i / 256),
                            static_cast<std::uint8_t>(i % 256), 0),
                   24};
    acc |= space.ip_prefix(Field::DstIp, p);
  }
  // 1000 disjoint /24 prefixes: the BDD is a shared-suffix trie; node
  // count stays within a small multiple of the prefix bits involved.
  EXPECT_LT(acc.bdd_size(), 5000u);
  EXPECT_DOUBLE_EQ(acc.count(), 1000.0 * std::exp2(104 - 24));
}

TEST(BddStress, SubtractionChainsReachFixpoint) {
  HeaderSpace space;
  HeaderSet all = space.all();
  HeaderSet covered = space.none();
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    const Prefix p{Ipv4::of(10, static_cast<std::uint8_t>(rng.uniform(0, 7)),
                            static_cast<std::uint8_t>(rng.uniform(0, 255)), 0),
                   static_cast<std::uint8_t>(rng.uniform(9, 26))};
    const HeaderSet s = space.ip_prefix(Field::DstIp, p) - covered;
    covered |= s;
    // Invariants of shadow subtraction:
    EXPECT_TRUE(s.subset_of(covered));
    EXPECT_TRUE((s & (covered - s) & s).empty() || s.empty());
  }
  const HeaderSet rest = all - covered;
  EXPECT_EQ((covered | rest), all);
  EXPECT_TRUE((covered & rest).empty());
}

TEST(BddStress, CanonicityUnderManyEquivalentFormulas) {
  // Build the same function 50 different ways; all must be one node.
  BddManager m(24);
  Rng rng(77);
  const BddRef target = m.apply_or(m.apply_and(m.var(3), m.var(17)),
                                   m.apply_and(m.var(5), m.nvar(9)));
  for (int t = 0; t < 50; ++t) {
    // Random re-association / commutation of the same expression.
    BddRef a = m.apply_and(m.var(17), m.var(3));
    BddRef b = m.apply_and(m.nvar(9), m.var(5));
    if (rng.chance(0.5)) std::swap(a, b);
    BddRef f = m.apply_or(a, b);
    // Double negation + De Morgan detour.
    if (rng.chance(0.5))
      f = m.apply_not(m.apply_and(m.apply_not(a), m.apply_not(b)));
    EXPECT_EQ(f, target);
  }
}

TEST(BddStress, SatCountMatchesIncludeExcludeOnChains) {
  BddManager m(30);
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    // f = OR of 3 random conjunctions; count via inclusion-exclusion.
    std::array<BddRef, 3> conj;
    for (auto& c : conj) {
      c = kBddTrue;
      for (int i = 0; i < 4; ++i) {
        const int v = static_cast<int>(rng.index(30));
        c = m.apply_and(c, rng.chance(0.5) ? m.var(v) : m.nvar(v));
      }
    }
    const BddRef f = m.or_all({conj[0], conj[1], conj[2]});
    const double direct = m.sat_count(f);
    const double ie = m.sat_count(conj[0]) + m.sat_count(conj[1]) +
                      m.sat_count(conj[2]) -
                      m.sat_count(m.apply_and(conj[0], conj[1])) -
                      m.sat_count(m.apply_and(conj[0], conj[2])) -
                      m.sat_count(m.apply_and(conj[1], conj[2])) +
                      m.sat_count(m.and_all({conj[0], conj[1], conj[2]}));
    EXPECT_NEAR(direct, ie, 1e-6) << "round " << round;
  }
}

TEST(BddStress, RangePartitionExhaustive) {
  // field_range over a partition of the 16-bit space must OR to TRUE.
  HeaderSpace space;
  HeaderSet acc = space.none();
  const std::array<std::pair<std::uint64_t, std::uint64_t>, 5> parts = {
      std::pair{0ULL, 1023ULL},
      {1024ULL, 8191ULL},
      {8192ULL, 32767ULL},
      {32768ULL, 65000ULL},
      {65001ULL, 65535ULL}};
  for (const auto& [lo, hi] : parts) {
    const HeaderSet r = space.field_range(Field::SrcPort, lo, hi);
    EXPECT_TRUE((acc & r).empty());
    acc |= r;
  }
  EXPECT_TRUE(acc.is_all());
}

TEST(BddStress, PickRandomCoversTheSet) {
  // Sampling a 3-element set repeatedly must see every element.
  HeaderSpace space;
  PacketHeader a, b, c;
  a.dst_port = 1;
  b.dst_port = 2;
  c.dst_port = 3;
  const HeaderSet s =
      space.singleton(a) | space.singleton(b) | space.singleton(c);
  Rng rng(11);
  std::array<int, 4> seen{};
  for (int i = 0; i < 300; ++i) {
    auto h = s.sample(rng);
    ASSERT_TRUE(h);
    ASSERT_GE(h->dst_port, 1);
    ASSERT_LE(h->dst_port, 3);
    ++seen[h->dst_port];
  }
  EXPECT_GT(seen[1], 0);
  EXPECT_GT(seen[2], 0);
  EXPECT_GT(seen[3], 0);
}

}  // namespace
}  // namespace veridp
