// Path-table construction tests (Algorithm 2), headlined by the Table-1
// reproduction on the Figure-5 toy network.
#include "veridp/path_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "controller/routing.hpp"
#include "testutil.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

using testutil::header;
using testutil::Figure5;

class ToyNetwork : public ::testing::Test {
 protected:
  ToyNetwork()
      : topo(toy_figure5()), controller(topo), fig(testutil::install_figure5(controller)),
        provider(space, topo, controller.logical_configs()),
        builder(space, topo, provider) {
    table = builder.build();
  }

  HeaderSpace space;
  Topology topo;
  Controller controller;
  Figure5 fig;
  ConfigTransferProvider provider;
  PathTableBuilder builder;
  PathTable table;

  static BloomTag tag_of(std::initializer_list<Hop> hops) {
    BloomTag t(16);
    for (const Hop& h : hops) t.insert(h);
    return t;
  }
};

// Table 1, row 1: SSH from H1 to H3 goes via S2 and the middlebox.
TEST_F(ToyNetwork, Table1SshRowViaMiddlebox) {
  const auto* list =
      table.lookup(PortKey{fig.s1, 1}, PortKey{fig.s3, 2});
  ASSERT_NE(list, nullptr);
  const PacketHeader ssh = header(Figure5::h1(), Figure5::h3(), Figure5::kSsh);
  const PathEntry* match = nullptr;
  for (const PathEntry& e : *list)
    if (e.headers.contains(ssh)) match = &e;
  ASSERT_NE(match, nullptr);
  const std::vector<Hop> expect{{1, fig.s1, 3},
                                {1, fig.s2, 3},
                                {3, fig.s2, 2},
                                {1, fig.s3, 2}};
  EXPECT_EQ(match->path, expect);
  EXPECT_EQ(match->tag, tag_of({{1, fig.s1, 3},
                                {1, fig.s2, 3},
                                {3, fig.s2, 2},
                                {1, fig.s3, 2}}));
}

// Table 1, row 2: non-SSH from H1 to H3 goes directly via S3.
TEST_F(ToyNetwork, Table1WebRowDirect) {
  const auto* list =
      table.lookup(PortKey{fig.s1, 1}, PortKey{fig.s3, 2});
  ASSERT_NE(list, nullptr);
  const PacketHeader web = header(Figure5::h1(), Figure5::h3(), 80);
  const PathEntry* match = nullptr;
  for (const PathEntry& e : *list)
    if (e.headers.contains(web)) match = &e;
  ASSERT_NE(match, nullptr);
  const std::vector<Hop> expect{{1, fig.s1, 4}, {3, fig.s3, 2}};
  EXPECT_EQ(match->path, expect);
  EXPECT_EQ(match->tag, tag_of({{1, fig.s1, 4}, {3, fig.s3, 2}}));
}

// Table 1, row 3+: traffic from H2 is dropped at S3 (rule 8), both for
// the direct path and the middlebox path.
TEST_F(ToyNetwork, Table1DropRowsForH2) {
  const auto* list =
      table.lookup(PortKey{fig.s1, 2}, PortKey{fig.s3, kDropPort});
  ASSERT_NE(list, nullptr);
  const PacketHeader web = header(Figure5::h2(), Figure5::h3(), 80);
  const PacketHeader ssh = header(Figure5::h2(), Figure5::h3(), Figure5::kSsh);
  const PathEntry *web_entry = nullptr, *ssh_entry = nullptr;
  for (const PathEntry& e : *list) {
    if (e.headers.contains(web)) web_entry = &e;
    if (e.headers.contains(ssh)) ssh_entry = &e;
  }
  ASSERT_NE(web_entry, nullptr);
  ASSERT_NE(ssh_entry, nullptr);
  const std::vector<Hop> web_path{{2, fig.s1, 4}, {3, fig.s3, kDropPort}};
  EXPECT_EQ(web_entry->path, web_path);
  EXPECT_EQ(web_entry->tag,
            tag_of({{2, fig.s1, 4}, {3, fig.s3, kDropPort}}));
  const std::vector<Hop> ssh_path{{2, fig.s1, 3},
                                  {1, fig.s2, 3},
                                  {3, fig.s2, 2},
                                  {1, fig.s3, kDropPort}};
  EXPECT_EQ(ssh_entry->path, ssh_path);
}

// The SSH row's header set must exclude H2's traffic (dropped at S3).
TEST_F(ToyNetwork, DeliveredHeaderSetsExcludeDroppedTraffic) {
  const auto* list =
      table.lookup(PortKey{fig.s1, 2}, PortKey{fig.s3, 2});
  const PacketHeader h2ssh = header(Figure5::h2(), Figure5::h3(), Figure5::kSsh);
  if (list) {
    for (const PathEntry& e : *list) {
      EXPECT_FALSE(e.headers.contains(h2ssh));
    }
  }
}

TEST_F(ToyNetwork, HeaderSetsAreDisjointPerPair) {
  EXPECT_TRUE(table.disjoint_headers());
}

TEST_F(ToyNetwork, EveryEdgePortHasEntries) {
  for (const PortKey& in : topo.edge_ports())
    EXPECT_FALSE(table.outports(in).empty()) << to_string(in);
}

TEST_F(ToyNetwork, ReachIndexRecordsArrivals) {
  ReachIndex reach(space);
  PathTable t2 = builder.build(&reach);
  // SSH traffic from (S1,1) reaches S2.
  const HeaderSet at_s2 = reach.reach(PortKey{fig.s1, 1}, fig.s2);
  EXPECT_TRUE(at_s2.contains(header(Figure5::h1(), Figure5::h3(), 22)));
  EXPECT_FALSE(at_s2.contains(header(Figure5::h1(), Figure5::h3(), 80)));
  // Everything injected at (S1,1) "reaches" S1 itself.
  EXPECT_TRUE(reach.reach(PortKey{fig.s1, 1}, fig.s1).is_all());
  // affected_inports finds entry ports whose traffic meets a delta.
  const HeaderSet ssh_delta = space.field_eq(Field::DstPort, 22);
  const auto affected = reach.affected_inports(fig.s2, ssh_delta);
  EXPECT_NE(std::find(affected.begin(), affected.end(), PortKey{fig.s1, 1}),
            affected.end());
}

TEST(PathBuilder, LoopyConfigurationStillTerminates) {
  // Two switches pointing at each other: traversal must cut the loop and
  // produce no delivery entry for the looping headers.
  Topology topo = linear(2);
  Controller c(topo);
  const Prefix loop_p{Ipv4::of(10, 0, 9, 0), 24};
  c.add_rule(0, 24, Match::dst_prefix(loop_p), Action::output(2));
  c.add_rule(1, 24, Match::dst_prefix(loop_p), Action::output(1));
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  PathTableBuilder builder(space, topo, provider);
  const PathTable table = builder.build();
  const PacketHeader looping =
      header(Ipv4::of(10, 0, 0, 1), Ipv4::of(10, 0, 9, 1));
  table.for_each([&looping](PortKey, PortKey out, const PathEntry& e) {
    if (e.headers.contains(looping)) {
      // Only drop entries may contain looping headers (no delivery).
      EXPECT_EQ(out.port, kDropPort);
    }
  });
}

TEST(PathBuilder, FatTreeRoutingTableIsSaneAndDisjoint) {
  Topology topo = fat_tree(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  PathTableBuilder builder(space, topo, provider);
  const PathTable table = builder.build();
  const auto stats = table.stats();
  // 16 hosts: every ordered host pair is connected => at least 240
  // delivery pairs (plus drop entries).
  EXPECT_GE(stats.num_pairs, 16u * 15u);
  EXPECT_GE(stats.num_paths, stats.num_pairs);
  EXPECT_TRUE(table.disjoint_headers());
  // Spot-check a delivery path exists and is shortest (<= 5 hops + deliver).
  const auto& subnets = topo.subnets();
  const auto& [sp, ss] = subnets.front();
  const auto& [dp, ds] = subnets.back();
  const auto* list = table.lookup(sp, dp);
  ASSERT_NE(list, nullptr);
  bool found = false;
  for (const PathEntry& e : *list)
    if (e.headers.contains(header(Ipv4{ss.addr}, Ipv4{ds.addr}))) {
      found = true;
      EXPECT_LE(e.path.size(), 6u);
    }
  EXPECT_TRUE(found);
}

TEST(PathBuilder, BuildFromSingleInportMatchesFullBuildSlice) {
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  PathTableBuilder builder(space, topo, provider);
  const PathTable full = builder.build();

  const PortKey in{0, 3};
  PathTable single;
  builder.build_from(single, in);
  // Every entry of `single` appears identically in `full`.
  std::size_t checked = 0;
  single.for_each([&](PortKey i, PortKey o, const PathEntry& e) {
    ASSERT_EQ(i, in);
    const auto* list = full.lookup(i, o);
    ASSERT_NE(list, nullptr);
    bool found = false;
    for (const PathEntry& fe : *list)
      if (fe.path == e.path && fe.headers == e.headers && fe.tag == e.tag)
        found = true;
    EXPECT_TRUE(found);
    ++checked;
  });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace veridp
