// Concurrent const readers over PathTable / HeaderSet / BDD state
// (satellite of DESIGN.md §6; the per-layer thread-safety contract).
//
// The parallel server's workers rely on a layered guarantee: a fully
// built PathTable read through its const interface is race-free — which
// bottoms out in BDD membership evaluation (`eval`, `pick_one`,
// `pick_random`) never touching the manager's node store mutably, and
// `sat_count` guarding its lazily-built memo. These tests drive exactly
// those paths from many threads, with and without a concurrent snapshot
// swap, and are the primary targets of the TSan preset: a data race
// anywhere in the read path fails the `concurrency`-labelled run.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "controller/routing.hpp"
#include "testutil.hpp"
#include "veridp/path_builder.hpp"
#include "veridp/verifier.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

/// Builds the path table of a shortest-path deployment in its own fresh
/// HeaderSpace (the snapshot-publication idiom: one BDD arena per
/// table, so builds never mutate nodes a reader is evaluating).
std::shared_ptr<const PathTable> build_table(const Controller& c) {
  HeaderSpace space;  // keeps its manager alive through the HeaderSets
  ConfigTransferProvider provider(space, c.topology(), c.logical_configs());
  PathTableBuilder builder(space, c.topology(), provider);
  return std::make_shared<const PathTable>(builder.build());
}

TEST(ConcurrentReaders, ManyThreadsVerifyAgainstSharedTable) {
  Topology topo = linear(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  const std::shared_ptr<const PathTable> table = build_table(c);

  Network net(topo);
  c.deploy(net);
  std::vector<TagReport> reports;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry, 0.0);
    reports.insert(reports.end(), r.reports.begin(), r.reports.end());
  }
  ASSERT_GT(reports.size(), 0u);

  // Sequential ground truth first.
  std::uint64_t expect_passed = 0;
  for (const TagReport& r : reports)
    if (Verifier::check(r, *table).ok()) ++expect_passed;
  ASSERT_EQ(expect_passed, reports.size()) << "consistent plane passes";

  constexpr unsigned kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<std::uint64_t> passed{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reports, &table, &passed] {
      std::uint64_t local = 0;
      for (int it = 0; it < kIters; ++it)
        for (const TagReport& r : reports)
          if (Verifier::check(r, *table).ok()) ++local;
      passed.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(passed.load(), expect_passed * kThreads * kIters);
}

// Membership evaluation (`contains` → BddManager::eval) and sat-picking
// (`sample`/`any_member` → pick_random/pick_one) from many threads over
// the same entries, racing a writer that swaps the published table
// pointer mid-stream. Each replacement table lives in a fresh arena, so
// the only shared mutable object is the atomic pointer itself.
TEST(ConcurrentReaders, MembershipAndSatPickRaceFreeAcrossSnapshotSwap) {
  Topology topo = linear(4);
  Controller c(topo);
  routing::install_shortest_paths(c);

  std::atomic<std::shared_ptr<const PathTable>> published{build_table(c)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> evals{0};

  constexpr unsigned kReaders = 6;
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&published, &stop, &evals, t] {
      Rng rng(0x9e3779b9ULL + t);  // sat-pick RNG is per-thread state
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const PathTable> table =
            published.load(std::memory_order_acquire);
        table->for_each([&rng, &local](PortKey, PortKey,
                                       const PathEntry& e) {
          if (const auto h = e.headers.sample(rng)) {
            if (e.headers.contains(*h)) ++local;  // always true
          }
          if (const auto h = e.headers.any_member())
            local += e.headers.contains(*h) ? 1 : 0;
          local += e.headers.bdd_size() > 0 ? 1 : 0;
        });
      }
      evals.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Writer: five config changes, each publishing a fresh-arena rebuild.
  const auto& subnets = topo.subnets();
  ASSERT_FALSE(subnets.empty());
  for (int i = 0; i < 5; ++i) {
    const auto& [dst_port, subnet] =
        subnets[static_cast<std::size_t>(i) % subnets.size()];
    c.add_rule(dst_port.sw, 5000 + i, Match::dst_prefix(subnet),
               Action::drop());
    published.store(build_table(c), std::memory_order_release);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(evals.load(), 0u);
}

// `HeaderSet::count` memoizes inside the shared BddManager — the one
// lazily-mutated cache on the read side. The guard must make concurrent
// counts race-free AND value-identical.
TEST(ConcurrentReaders, ConcurrentSatCountIsGuardedAndDeterministic) {
  Topology topo = linear(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  const std::shared_ptr<const PathTable> table = build_table(c);

  std::vector<HeaderSet> sets;
  table->for_each([&sets](PortKey, PortKey, const PathEntry& e) {
    sets.push_back(e.headers);
  });
  ASSERT_GT(sets.size(), 1u);

  // Ground truth on a cold cache equals re-counts on a warm one.
  std::vector<double> expect;
  expect.reserve(sets.size());
  for (const HeaderSet& s : sets) expect.push_back(s.count());

  constexpr unsigned kThreads = 8;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&sets, &got, t] {
      for (const HeaderSet& s : sets) got[t].push_back(s.count());
    });
  }
  for (std::thread& t : pool) t.join();
  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], expect);
}

}  // namespace
}  // namespace veridp
