// Baseline tests: ATPG catches reception faults but misses path-only
// faults (which VeriDP catches); Monocle probes actually distinguish
// their target rules.
#include <gtest/gtest.h>

#include "baseline/atpg.hpp"
#include "baseline/monocle.hpp"
#include "controller/policy.hpp"
#include "controller/routing.hpp"
#include "dataplane/fault.hpp"
#include "testutil.hpp"
#include "veridp/path_builder.hpp"
#include "veridp/verifier.hpp"

namespace veridp {
namespace {

using testutil::header;

struct Deployment {
  explicit Deployment(Topology t) : topo(std::move(t)), controller(topo), net(topo) {
    routing::install_shortest_paths(controller);
    controller.deploy(net);
    ConfigTransferProvider provider(space, topo, controller.logical_configs());
    table = PathTableBuilder(space, topo, provider).build();
  }
  HeaderSpace space;
  Topology topo;
  Controller controller;
  Network net;
  PathTable table;
};

TEST(Atpg, ConsistentPlanePassesAllProbes) {
  Deployment d(fat_tree(4));
  Rng rng(1);
  const auto probes = baseline::generate_probes(d.table, rng);
  ASSERT_FALSE(probes.empty());
  const auto result = baseline::run(d.net, probes);
  EXPECT_EQ(result.passed, result.probes);
  EXPECT_TRUE(result.failed.empty());
}

TEST(Atpg, DetectsBlackhole) {
  Deployment d(linear(3));
  FaultInjector inject(d.net);
  const auto& rules = d.net.at(1).config().table.rules();
  ASSERT_FALSE(rules.empty());
  ASSERT_TRUE(inject.replace_with_drop(1, rules.front().id));
  Rng rng(2);
  const auto probes = baseline::generate_probes(d.table, rng);
  const auto result = baseline::run(d.net, probes);
  EXPECT_LT(result.passed, result.probes);
}

TEST(Atpg, MissesPathDeviationThatVeriDpCatches) {
  // The §3.1 argument in executable form. Stanford-like zone router
  // deviates traffic via the other backbone router; every probe still
  // arrives at its expected exit port, so ATPG sees nothing. VeriDP's
  // tags expose the detour.
  Deployment d(stanford_like(14, 2));
  const SwitchId boza = d.topo.find("boza");
  const SwitchId coza = d.topo.find("coza");
  const Prefix dst = *d.topo.subnet(PortKey{coza, 4});
  const FlowRule* victim = nullptr;
  for (const FlowRule& r : d.net.at(boza).config().table.rules())
    if (r.match.dst == dst && r.action.out == 1) victim = &r;
  ASSERT_NE(victim, nullptr);
  FaultInjector inject(d.net);
  ASSERT_TRUE(inject.rewrite_rule_output(boza, victim->id, 2));

  Rng rng(3);
  const auto probes = baseline::generate_probes(d.table, rng);
  const auto atpg = baseline::run(d.net, probes);
  EXPECT_EQ(atpg.passed, atpg.probes) << "ATPG is blind to the detour";

  Verifier v(d.table);
  std::size_t veridp_failures = 0;
  for (const auto& p : probes) {
    const auto r = d.net.inject(p.header, p.entry);
    for (const TagReport& rep : r.reports)
      if (!v.verify(rep).ok()) ++veridp_failures;
  }
  EXPECT_GT(veridp_failures, 0u) << "VeriDP sees what ATPG cannot";
}

TEST(Monocle, ProbeHitsItsRuleAndDistinguishes) {
  HeaderSpace space;
  SwitchConfig cfg;
  cfg.table.add(FlowRule{1, 8,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                         Action::output(1)});
  cfg.table.add(FlowRule{2, 24,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 2, 0), 24}),
                         Action::output(2)});
  auto probe = baseline::generate_probe(space, cfg, 4, 2);
  ASSERT_TRUE(probe.has_value());
  // The probe hits rule 2...
  const FlowRule* hit = cfg.table.lookup(probe->header, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 2u);
  EXPECT_EQ(probe->expected_out, 2u);
  // ...and would be forwarded elsewhere without it.
  FlowTable without = cfg.table;
  without.remove(2);
  EXPECT_NE(without.lookup_port(probe->header, 1), probe->expected_out);
  EXPECT_EQ(probe->without_rule, 1u);
}

TEST(Monocle, ShadowedRuleIsUnprobeable) {
  HeaderSpace space;
  SwitchConfig cfg;
  cfg.table.add(FlowRule{1, 100,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                         Action::output(1)});
  cfg.table.add(FlowRule{2, 1,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 2, 0), 24}),
                         Action::output(2)});
  // Rule 2 is fully covered by the higher-priority /8.
  EXPECT_FALSE(baseline::generate_probe(space, cfg, 4, 2).has_value());
}

TEST(Monocle, SameActionRefinementIsUnprobeable) {
  // Removing a refinement that forwards to the same port changes nothing
  // observable: no distinguishing probe exists.
  HeaderSpace space;
  SwitchConfig cfg;
  cfg.table.add(FlowRule{1, 8,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                         Action::output(1)});
  cfg.table.add(FlowRule{2, 24,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 2, 0), 24}),
                         Action::output(1)});
  EXPECT_FALSE(baseline::generate_probe(space, cfg, 4, 2).has_value());
}

TEST(Monocle, DropRuleProbeable) {
  HeaderSpace space;
  SwitchConfig cfg;
  cfg.table.add(FlowRule{1, 8,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                         Action::output(1)});
  cfg.table.add(FlowRule{2, 100,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 2, 0), 24}),
                         Action::drop()});
  auto probe = baseline::generate_probe(space, cfg, 4, 2);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->expected_out, kDropPort);
  EXPECT_EQ(probe->without_rule, 1u);
}

TEST(Monocle, GenerateAllCoversTheTable) {
  Deployment d(linear(4));
  const SwitchId sw = 1;
  const auto run = baseline::generate_all(
      d.space, d.net.at(sw).config(), d.topo.num_ports(sw));
  // Transit rules on a chain are all probeable.
  EXPECT_EQ(run.probes.size() + run.skipped,
            d.net.at(sw).config().table.size());
  EXPECT_GT(run.probes.size(), 0u);
  for (const auto& p : run.probes) {
    const FlowRule* hit = d.net.at(sw).config().table.lookup(p.header, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->id, p.rule);
  }
}

}  // namespace
}  // namespace veridp
