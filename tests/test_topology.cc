// Topology and generator tests.
#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/generators.hpp"

namespace veridp {
namespace {

TEST(Topology, SwitchAndPortBasics) {
  Topology t;
  const SwitchId a = t.add_switch("a", 4);
  const SwitchId b = t.add_switch("b", 2);
  EXPECT_EQ(t.num_switches(), 2u);
  EXPECT_EQ(t.num_ports(a), 4u);
  EXPECT_EQ(t.name(b), "b");
  EXPECT_EQ(t.find("a"), a);
  EXPECT_EQ(t.find("zzz"), kNoSwitch);
  EXPECT_TRUE(t.valid_port(PortKey{a, 1}));
  EXPECT_TRUE(t.valid_port(PortKey{a, 4}));
  EXPECT_FALSE(t.valid_port(PortKey{a, 5}));
  EXPECT_FALSE(t.valid_port(PortKey{a, 0}));
}

TEST(Topology, LinksAndPeers) {
  Topology t;
  const SwitchId a = t.add_switch("a", 2);
  const SwitchId b = t.add_switch("b", 2);
  t.add_link(PortKey{a, 1}, PortKey{b, 1});
  EXPECT_EQ(t.peer(PortKey{a, 1}), (PortKey{b, 1}));
  EXPECT_EQ(t.peer(PortKey{b, 1}), (PortKey{a, 1}));
  EXPECT_FALSE(t.peer(PortKey{a, 2}).has_value());
  EXPECT_FALSE(t.is_edge_port(PortKey{a, 1}));
  EXPECT_TRUE(t.is_edge_port(PortKey{a, 2}));
  EXPECT_EQ(t.num_links(), 1u);
  const auto edges = t.edge_ports();
  EXPECT_EQ(edges.size(), 2u);
}

TEST(Topology, MiddleboxSelfLink) {
  Topology t;
  const SwitchId a = t.add_switch("a", 3);
  t.add_middlebox(PortKey{a, 3});
  EXPECT_EQ(t.peer(PortKey{a, 3}), (PortKey{a, 3}));
  EXPECT_FALSE(t.is_edge_port(PortKey{a, 3}));
}

TEST(Topology, SubnetsAndLongestMatch) {
  Topology t;
  const SwitchId a = t.add_switch("a", 3);
  t.attach_subnet(PortKey{a, 1}, Prefix{Ipv4::of(10, 0, 0, 0), 8});
  t.attach_subnet(PortKey{a, 2}, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  EXPECT_EQ(t.edge_port_for(Ipv4::of(10, 1, 2, 3)), (PortKey{a, 2}));
  EXPECT_EQ(t.edge_port_for(Ipv4::of(10, 2, 2, 3)), (PortKey{a, 1}));
  EXPECT_FALSE(t.edge_port_for(Ipv4::of(11, 0, 0, 1)).has_value());
  EXPECT_EQ(t.subnet(PortKey{a, 2})->len, 16);
  EXPECT_FALSE(t.subnet(PortKey{a, 3}).has_value());
}

TEST(Topology, NeighborsListsLinkedPortsInOrder) {
  Topology t;
  const SwitchId a = t.add_switch("a", 3);
  const SwitchId b = t.add_switch("b", 1);
  const SwitchId c = t.add_switch("c", 1);
  t.add_link(PortKey{a, 3}, PortKey{b, 1});
  t.add_link(PortKey{a, 1}, PortKey{c, 1});
  const auto n = t.neighbors(a);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].first, 1u);
  EXPECT_EQ(n[0].second.sw, c);
  EXPECT_EQ(n[1].first, 3u);
  EXPECT_EQ(n[1].second.sw, b);
}

// ---- Fat tree --------------------------------------------------------

class FatTreeShape : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeShape, CountsMatchFormulae) {
  const int k = GetParam();
  const int h = k / 2;
  const Topology t = fat_tree(k);
  // h^2 core + k*(h agg + h edge).
  EXPECT_EQ(t.num_switches(),
            static_cast<std::size_t>(h * h + k * (h + h)));
  // Host-facing edge ports: k pods * h edges * h hosts.
  EXPECT_EQ(t.subnets().size(), static_cast<std::size_t>(k * h * h));
  // Links: edge-agg k*h*h plus agg-core k*h*h.
  EXPECT_EQ(t.num_links(), static_cast<std::size_t>(2 * k * h * h));
  // Every attached subnet is a /32 and resolvable back to its port.
  for (const auto& [port, subnet] : t.subnets()) {
    EXPECT_EQ(subnet.len, 32);
    EXPECT_EQ(t.edge_port_for(Ipv4{subnet.addr}), port);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeShape, ::testing::Values(2, 4, 6, 8));

// ---- Backbones -------------------------------------------------------

TEST(StanfordLike, PaperScaleCounts) {
  const Topology t = stanford_like();
  // 16 routers (2 backbone + 14 zone) + 10 L2 switches.
  EXPECT_EQ(t.num_switches(), 26u);
  EXPECT_EQ(t.find("bbra"), 0u);
  EXPECT_NE(t.find("boza"), kNoSwitch);
  EXPECT_NE(t.find("yozb"), kNoSwitch);
  // 14 zones x 10 edge ports + 7 zone-pair L2 switches x 20 edge ports.
  EXPECT_EQ(t.subnets().size(), 140u + 140u);
  // All subnets resolvable, all /20.
  for (const auto& [port, subnet] : t.subnets()) {
    EXPECT_EQ(subnet.len, 20);
    EXPECT_EQ(t.edge_port_for(Ipv4{subnet.addr + 5}), port);
  }
}

TEST(StanfordLike, SubnetsAreDistinct) {
  const Topology t = stanford_like();
  std::set<std::pair<std::uint32_t, std::uint8_t>> seen;
  for (const auto& [port, subnet] : t.subnets()) {
    (void)port;
    EXPECT_TRUE(seen.insert({subnet.addr, subnet.len}).second)
        << to_string(subnet);
  }
}

TEST(Internet2Like, PaperScaleCounts) {
  const Topology t = internet2_like(4);
  EXPECT_EQ(t.num_switches(), 9u);
  EXPECT_EQ(t.num_links(), 12u);
  EXPECT_EQ(t.subnets().size(), 9u * 4u);
  EXPECT_NE(t.find("SEAT"), kNoSwitch);
  EXPECT_NE(t.find("NEWY"), kNoSwitch);
}

TEST(Linear, ChainShape) {
  const Topology t = linear(5);
  EXPECT_EQ(t.num_switches(), 5u);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_EQ(t.subnets().size(), 5u);
  // Middle switch port 1 and 2 are linked, port 3 is the edge.
  EXPECT_FALSE(t.is_edge_port(PortKey{2, 1}));
  EXPECT_FALSE(t.is_edge_port(PortKey{2, 2}));
  EXPECT_TRUE(t.is_edge_port(PortKey{2, 3}));
  // Chain endpoints have an extra free port.
  EXPECT_TRUE(t.is_edge_port(PortKey{0, 1}));
  EXPECT_TRUE(t.is_edge_port(PortKey{4, 2}));
}

TEST(ToyFigure5, WiringMatchesPaper) {
  const Topology t = toy_figure5();
  const SwitchId s1 = t.find("S1"), s2 = t.find("S2"), s3 = t.find("S3");
  EXPECT_EQ(t.peer(PortKey{s1, 3}), (PortKey{s2, 1}));
  EXPECT_EQ(t.peer(PortKey{s1, 4}), (PortKey{s3, 3}));
  EXPECT_EQ(t.peer(PortKey{s2, 2}), (PortKey{s3, 1}));
  EXPECT_EQ(t.peer(PortKey{s2, 3}), (PortKey{s2, 3}));  // middlebox
  EXPECT_TRUE(t.is_edge_port(PortKey{s1, 1}));
  EXPECT_TRUE(t.is_edge_port(PortKey{s1, 2}));
  EXPECT_TRUE(t.is_edge_port(PortKey{s3, 2}));
  EXPECT_EQ(t.edge_port_for(Ipv4::of(10, 0, 1, 1)), (PortKey{s1, 1}));
  EXPECT_EQ(t.edge_port_for(Ipv4::of(10, 0, 2, 1)), (PortKey{s3, 2}));
}

TEST(GridFigure7, WiringMatchesPaper) {
  const Topology t = grid_figure7();
  const SwitchId s1 = t.find("S1"), s2 = t.find("S2"), s3 = t.find("S3"),
                 s4 = t.find("S4"), s5 = t.find("S5"), s6 = t.find("S6");
  EXPECT_EQ(t.peer(PortKey{s1, 2}), (PortKey{s2, 1}));
  EXPECT_EQ(t.peer(PortKey{s1, 4}), (PortKey{s3, 1}));
  EXPECT_EQ(t.peer(PortKey{s2, 2}), (PortKey{s4, 1}));
  EXPECT_EQ(t.peer(PortKey{s2, 3}), (PortKey{s5, 1}));
  EXPECT_EQ(t.peer(PortKey{s3, 3}), (PortKey{s6, 1}));
  EXPECT_EQ(t.peer(PortKey{s5, 3}), (PortKey{s6, 2}));
  EXPECT_TRUE(t.is_edge_port(PortKey{s1, 1}));  // Src
  EXPECT_TRUE(t.is_edge_port(PortKey{s4, 3}));  // Dst
}

}  // namespace
}  // namespace veridp
