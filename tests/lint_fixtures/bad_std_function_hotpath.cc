// Seeded violation for veridp_lint's hot-path-std-function rule: this
// file is marked hot-path, so the type-erased callbacks below must be
// rejected (allocation + virtual dispatch per report). Never compiled;
// linted by ctest.
#include <functional>

namespace fixture {

// veridp-lint: hot-path

struct Verifier {
  // BAD: type-erased predicate on the per-report path.
  std::function<bool(int)> admit;

  bool check(int report) const { return admit(report); }
};

// BAD: type-erased callback parameter; should be a template.
inline void for_each_report(const std::function<void(int)>& fn) {
  for (int i = 0; i < 4; ++i) fn(i);
}

}  // namespace fixture
