// Seeded violation for veridp_lint's bare-bddref-member rule: the
// struct below squirrels away a BddRef with no record of which
// manager's node pool it indexes — the cross-arena bug class that
// VERIDP_BDD_CHECK_ARENA aborts on at runtime. Never compiled; linted
// by ctest.
#include <cstdint>

namespace fixture {

using BddRef = std::int32_t;

struct CachedPredicate {
  BddRef predicate = 0;  // BAD: no arena provenance alongside
  std::uint32_t epoch = 0;
  double weight = 1.0;
};

}  // namespace fixture
