// Seeded violations for veridp_lint's relaxed-atomic rule: bare
// memory_order_relaxed uses outside the profiler/lockdep internals,
// including one whose allow() is missing the required justification.
// Never compiled; linted by ctest (lint_fixture_relaxed_atomic expects
// this file to FAIL the lint with only relaxed-atomic findings).
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> g_published{0};
std::atomic<bool> g_ready{false};

void publish() {
  // BAD: relaxed store that a reader will treat as "the table is
  // ready" — the exact flag-implies-other-memory pattern the rule
  // exists to flush out.
  g_ready.store(true, std::memory_order_relaxed);
}

std::uint64_t bump() {
  // BAD: allow present but no justification argument.
  // veridp-lint: allow(relaxed-atomic)
  return g_published.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t peek() {
  // OK (not reported): justified allow — this is the accepted form.
  // veridp-lint: allow(relaxed-atomic, monitoring counter; exactness not ordering)
  return g_published.load(std::memory_order_relaxed);
}

}  // namespace fixture
