// Seeded violation for veridp_lint's raw-lock rule: manual lock() /
// unlock() pairs leak on the early return below — exactly why the rule
// demands the RAII guards. Never compiled; linted by ctest
// (lint_fixture_raw_lock expects this file to FAIL the lint).
#include <mutex>

namespace fixture {

std::mutex g_mu;
int g_count = 0;

int increment_and_read(bool bail) {
  g_mu.lock();  // BAD: bare acquisition, invisible to clang analysis
  if (bail) return -1;  // BAD: leaks the lock
  const int v = ++g_count;
  g_mu.unlock();  // BAD: bare release
  return v;
}

bool try_bump(std::mutex* mu) {
  if (!mu->try_lock()) return false;  // BAD: pointer form, same rule
  ++g_count;
  mu->unlock();
  return true;
}

}  // namespace fixture
