// Seeded violation for veridp_lint's xor-hash-key rule: the key below
// XORs shifted fields, so (sw ^ d) << 20 aliases with plain sw when d's
// bits land in another field's lane — the silent-collision class the
// pooled BDD engine's full-triple keying eliminated. Never compiled;
// linted by ctest.
#include <cstdint>

namespace fixture {

inline std::uint64_t hop_key(std::uint32_t sw, std::uint32_t in,
                             std::uint32_t out) {
  // BAD: XOR-packed lanes; overflow in any field corrupts its
  // neighbour instead of failing loudly.
  return (static_cast<std::uint64_t>(sw) << 40) ^
         (static_cast<std::uint64_t>(in) << 20) ^ out;
}

}  // namespace fixture
