// Near-miss fixture: every construct here SKIRTS a veridp_lint rule
// without breaking it, pinning down the lint's precision. The
// lint_fixture_clean ctest expects this file to pass with zero
// findings. Never compiled.
#include <cstdint>
#include <memory>
#include <mutex>

namespace fixture {

// veridp-lint: hot-path

// A comment mentioning std::function must not trip the hot-path rule,
// and neither must the string literal below containing ".lock()".
inline const char* doc() { return "call .lock() via std::function"; }

// RAII guards are the sanctioned way to take a mutex — no raw-lock hit.
std::mutex g_mu;
inline int guarded_read(int* p) {
  std::lock_guard<std::mutex> lk(g_mu);
  return *p;
}

class BddManager;  // provenance marker for the struct below
using BddRef = std::int32_t;

// A BddRef member WITH arena provenance in the same struct is fine.
struct OwnedPredicate {
  std::shared_ptr<BddManager> arena;
  BddRef predicate = 0;
};

// A BddRef local inside a function body is not a member — no finding.
inline BddRef choose(BddRef a, BddRef b) {
  BddRef picked = a < b ? a : b;
  return picked;
}

// Disjoint-lane packing with | is the sanctioned key shape.
inline std::uint64_t port_key(std::uint32_t sw, std::uint32_t port) {
  return (static_cast<std::uint64_t>(sw) << 32) | port;
}

// Small-shift XOR (bit flips, mixers) stays below the >= 8 lane
// threshold on purpose.
inline std::uint8_t flip(std::uint8_t byte, unsigned bit) {
  return static_cast<std::uint8_t>(byte ^ (1u << (bit % 8u)));
}

}  // namespace fixture
