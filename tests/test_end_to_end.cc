// Cross-module end-to-end property tests: the invariants that hold for
// ANY topology/workload when control and data plane agree, plus failure
// injection sweeps that must always be detected.
#include <gtest/gtest.h>

#include "controller/routing.hpp"
#include "dataplane/fault.hpp"
#include "testutil.hpp"
#include "veridp/repair.hpp"
#include "veridp/server.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

struct TopoCase {
  const char* name;
  int kind;  // 0=linear(5) 1=ft4 2=internet2(3) 3=stanford(14,2) 4=toy
};

Topology make(int kind) {
  switch (kind) {
    case 0: return linear(5);
    case 1: return fat_tree(4);
    case 2: return internet2_like(3);
    case 3: return stanford_like(14, 2);
    default: return toy_figure5();
  }
}

class EveryTopology : public ::testing::TestWithParam<TopoCase> {};

// Invariant 1: with identical planes, every report of every flow
// verifies — regardless of delivery or drop (no false positives, §6.3).
TEST_P(EveryTopology, ConsistentPlaneNeverFails) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  // Some random ACLs and refinements to stress the predicate paths.
  Rng rng(99);
  workload::add_specific_rules(c, rng, 60);
  workload::add_edge_acls(c, rng, 10);
  server.sync();
  Network net(topo);
  c.deploy(net);

  for (const auto& f : workload::random_flows(topo, rng, 200)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      ASSERT_TRUE(server.verify(rep).ok())
          << GetParam().name << " " << f.header.str();
  }
  EXPECT_EQ(server.reports_failed(), 0u);
}

// Invariant 2: sampled delivered/dropped packets produce exactly one
// report; unsampled packets produce none.
TEST_P(EveryTopology, ReportCardinality) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Network net(topo);
  c.deploy(net);
  Rng rng(123);
  for (const auto& f : workload::random_flows(topo, rng, 150)) {
    const auto r = net.inject(f.header, f.entry);
    if (r.sampled)
      EXPECT_EQ(r.reports.size(), 1u) << GetParam().name;
    else
      EXPECT_TRUE(r.reports.empty());
    // The report's path tag must equal the OR over the real path.
    if (!r.reports.empty()) {
      BloomTag expect(net.tag_bits());
      for (const Hop& h : r.path) expect.insert(h);
      EXPECT_EQ(r.reports[0].tag, expect);
      EXPECT_EQ(r.reports[0].header, f.header);
      EXPECT_EQ(r.reports[0].inport, f.entry);
    }
  }
}

// Invariant 3: the data-plane path of a consistent network equals the
// control-plane walk.
TEST_P(EveryTopology, DataPathMatchesLogicalWalk) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Network net(topo);
  c.deploy(net);
  Rng rng(321);
  for (const auto& f : workload::random_flows(topo, rng, 100)) {
    const auto r = net.inject(f.header, f.entry);
    const auto walk = logical_walk(topo, c.logical_configs(), f.entry,
                                   f.header);
    ASSERT_EQ(r.path, walk) << GetParam().name << " " << f.header.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Topos, EveryTopology,
                         ::testing::Values(TopoCase{"linear", 0},
                                           TopoCase{"fat_tree", 1},
                                           TopoCase{"internet2", 2},
                                           TopoCase{"stanford", 3}));

// Fault sweep: every fault class on a fat tree is detected by at least
// one failing report, and repair restores a clean plane.
class FaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweep, DetectedAndRepairable) {
  Topology topo = fat_tree(4);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);
  FaultInjector inject(net);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);

  // Choose a switch that carries traffic and a fault class per param.
  const SwitchId sw = topo.find("agg_0_0");
  const auto& rules = net.at(sw).config().table.rules();
  ASSERT_FALSE(rules.empty());
  const FlowRule victim = rules[rng.index(rules.size())];
  switch (GetParam() % 4) {
    case 0:
      ASSERT_TRUE(inject.drop_rule(sw, victim.id));
      break;
    case 1:
      ASSERT_TRUE(inject.replace_with_drop(sw, victim.id));
      break;
    case 2: {
      const PortId wrong =
          victim.action.out == 1 ? 2 : 1;
      ASSERT_TRUE(inject.rewrite_rule_output(sw, victim.id, wrong));
      break;
    }
    default:
      inject.insert_external_rule(
          sw, FlowRule{900000 + static_cast<RuleId>(GetParam()), 99999,
                       Match::dst_prefix(victim.match.dst),
                       Action::output(victim.action.out == 1 ? 2 : 1)});
      break;
  }

  std::size_t failures = 0;
  std::optional<TagReport> first;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      if (!server.verify(rep).ok()) {
        ++failures;
        if (!first) first = rep;
      }
  }
  ASSERT_GT(failures, 0u) << "fault class " << GetParam() % 4;

  RepairEngine repair(c, net);
  repair.repair_from(*first);
  std::size_t after = 0;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      if (!server.verify(rep).ok()) ++after;
  }
  EXPECT_EQ(after, 0u) << "fault class " << GetParam() % 4;
}

INSTANTIATE_TEST_SUITE_P(Classes, FaultSweep, ::testing::Range(0, 8));

// §2.2 "priority obedience" (the HP 5406zl behaviour): the switch keeps
// all rules but stops honoring priorities — the oldest-inserted match
// wins. Detection requires a rule whose physical insertion order differs
// from its priority order, which is exactly what a live update creates.
TEST(FaultE2E, IgnorePriorityDetectedAndLocalized) {
  Topology topo = linear(3);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);

  // Live update: a high-priority blackhole for one host at the middle
  // switch, appended to the physical table after the base rules.
  const Match victim = Match::dst_prefix(Prefix{Ipv4::of(10, 0, 2, 7), 32});
  const RuleId id = c.add_rule(1, 1000, victim, Action::drop());
  net.at(1).config().table.add(FlowRule{id, 1000, victim, Action::drop()});

  const PacketHeader h =
      testutil::header(Ipv4::of(10, 0, 0, 1), Ipv4::of(10, 0, 2, 7));
  {
    // Sanity: with priorities honored, both planes drop at switch 1.
    const auto r = net.inject(h, PortKey{0, 3});
    ASSERT_EQ(r.disposition, Disposition::kDropped);
    ASSERT_EQ(r.reports.size(), 1u);
    ASSERT_TRUE(server.verify(r.reports[0]).ok());
  }

  FaultInjector inject(net);
  inject.ignore_priority(1);
  const auto r = net.inject(h, PortKey{0, 3});
  ASSERT_EQ(r.disposition, Disposition::kDelivered)
      << "the older /24 forward rule must shadow the blackhole";
  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_FALSE(server.verify(r.reports[0]).ok())
      << "priority inversion must be detected";
  const LocalizeResult inferred = server.localize(r.reports[0]);
  ASSERT_FALSE(inferred.candidates.empty());
  bool blamed = false;
  for (const Candidate& cand : inferred.candidates)
    if (cand.deviating_switch == 1) blamed = true;
  EXPECT_TRUE(blamed) << "localization must name switch 1";
}

// §6.2 "access violation": an in-bound ACL entry is lost on the switch,
// so denied traffic leaks through while the controller still believes it
// is filtered.
TEST(FaultE2E, RemoveAclEntryDetectedAndLocalized) {
  Topology topo = linear(3);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  // Security policy: the edge port of switch 0 denies inbound telnet.
  Match telnet;
  telnet.dst_port = 23;
  c.set_in_acl(0, 3, Acl().deny(telnet));
  server.sync();
  Network net(topo);
  c.deploy(net);

  const PacketHeader h = testutil::header(
      Ipv4::of(10, 0, 0, 9), Ipv4::of(10, 0, 2, 9), 23, kProtoTcp, 40000);
  {
    // Sanity: both planes deny telnet at the entry port.
    const auto r = net.inject(h, PortKey{0, 3});
    ASSERT_EQ(r.disposition, Disposition::kDropped);
    ASSERT_EQ(r.reports.size(), 1u);
    ASSERT_TRUE(server.verify(r.reports[0]).ok());
  }

  FaultInjector inject(net);
  ASSERT_TRUE(inject.remove_acl_entry(0, 3, /*inbound=*/true, 0));
  const auto r = net.inject(h, PortKey{0, 3});
  ASSERT_EQ(r.disposition, Disposition::kDelivered)
      << "the access violation is live";
  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_FALSE(server.verify(r.reports[0]).ok())
      << "leaked traffic must be detected";
  const LocalizeResult inferred = server.localize(r.reports[0]);
  ASSERT_FALSE(inferred.candidates.empty());
  bool blamed = false;
  for (const Candidate& cand : inferred.candidates)
    if (cand.deviating_switch == 0) blamed = true;
  EXPECT_TRUE(blamed) << "localization must name the entry switch";
}

}  // namespace
}  // namespace veridp
