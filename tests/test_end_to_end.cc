// Cross-module end-to-end property tests: the invariants that hold for
// ANY topology/workload when control and data plane agree, plus failure
// injection sweeps that must always be detected.
#include <gtest/gtest.h>

#include "controller/routing.hpp"
#include "dataplane/fault.hpp"
#include "testutil.hpp"
#include "veridp/repair.hpp"
#include "veridp/server.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

struct TopoCase {
  const char* name;
  int kind;  // 0=linear(5) 1=ft4 2=internet2(3) 3=stanford(14,2) 4=toy
};

Topology make(int kind) {
  switch (kind) {
    case 0: return linear(5);
    case 1: return fat_tree(4);
    case 2: return internet2_like(3);
    case 3: return stanford_like(14, 2);
    default: return toy_figure5();
  }
}

class EveryTopology : public ::testing::TestWithParam<TopoCase> {};

// Invariant 1: with identical planes, every report of every flow
// verifies — regardless of delivery or drop (no false positives, §6.3).
TEST_P(EveryTopology, ConsistentPlaneNeverFails) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  // Some random ACLs and refinements to stress the predicate paths.
  Rng rng(99);
  workload::add_specific_rules(c, rng, 60);
  workload::add_edge_acls(c, rng, 10);
  server.sync();
  Network net(topo);
  c.deploy(net);

  for (const auto& f : workload::random_flows(topo, rng, 200)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      ASSERT_TRUE(server.verify(rep).ok())
          << GetParam().name << " " << f.header.str();
  }
  EXPECT_EQ(server.reports_failed(), 0u);
}

// Invariant 2: sampled delivered/dropped packets produce exactly one
// report; unsampled packets produce none.
TEST_P(EveryTopology, ReportCardinality) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Network net(topo);
  c.deploy(net);
  Rng rng(123);
  for (const auto& f : workload::random_flows(topo, rng, 150)) {
    const auto r = net.inject(f.header, f.entry);
    if (r.sampled)
      EXPECT_EQ(r.reports.size(), 1u) << GetParam().name;
    else
      EXPECT_TRUE(r.reports.empty());
    // The report's path tag must equal the OR over the real path.
    if (!r.reports.empty()) {
      BloomTag expect(net.tag_bits());
      for (const Hop& h : r.path) expect.insert(h);
      EXPECT_EQ(r.reports[0].tag, expect);
      EXPECT_EQ(r.reports[0].header, f.header);
      EXPECT_EQ(r.reports[0].inport, f.entry);
    }
  }
}

// Invariant 3: the data-plane path of a consistent network equals the
// control-plane walk.
TEST_P(EveryTopology, DataPathMatchesLogicalWalk) {
  Topology topo = make(GetParam().kind);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Network net(topo);
  c.deploy(net);
  Rng rng(321);
  for (const auto& f : workload::random_flows(topo, rng, 100)) {
    const auto r = net.inject(f.header, f.entry);
    const auto walk = logical_walk(topo, c.logical_configs(), f.entry,
                                   f.header);
    ASSERT_EQ(r.path, walk) << GetParam().name << " " << f.header.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Topos, EveryTopology,
                         ::testing::Values(TopoCase{"linear", 0},
                                           TopoCase{"fat_tree", 1},
                                           TopoCase{"internet2", 2},
                                           TopoCase{"stanford", 3}));

// Fault sweep: every fault class on a fat tree is detected by at least
// one failing report, and repair restores a clean plane.
class FaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweep, DetectedAndRepairable) {
  Topology topo = fat_tree(4);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);
  FaultInjector inject(net);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);

  // Choose a switch that carries traffic and a fault class per param.
  const SwitchId sw = topo.find("agg_0_0");
  const auto& rules = net.at(sw).config().table.rules();
  ASSERT_FALSE(rules.empty());
  const FlowRule victim = rules[rng.index(rules.size())];
  switch (GetParam() % 4) {
    case 0:
      ASSERT_TRUE(inject.drop_rule(sw, victim.id));
      break;
    case 1:
      ASSERT_TRUE(inject.replace_with_drop(sw, victim.id));
      break;
    case 2: {
      const PortId wrong =
          victim.action.out == 1 ? 2 : 1;
      ASSERT_TRUE(inject.rewrite_rule_output(sw, victim.id, wrong));
      break;
    }
    default:
      inject.insert_external_rule(
          sw, FlowRule{900000 + static_cast<RuleId>(GetParam()), 99999,
                       Match::dst_prefix(victim.match.dst),
                       Action::output(victim.action.out == 1 ? 2 : 1)});
      break;
  }

  std::size_t failures = 0;
  std::optional<TagReport> first;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      if (!server.verify(rep).ok()) {
        ++failures;
        if (!first) first = rep;
      }
  }
  ASSERT_GT(failures, 0u) << "fault class " << GetParam() % 4;

  RepairEngine repair(c, net);
  repair.repair_from(*first);
  std::size_t after = 0;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports)
      if (!server.verify(rep).ok()) ++after;
  }
  EXPECT_EQ(after, 0u) << "fault class " << GetParam() % 4;
}

INSTANTIATE_TEST_SUITE_P(Classes, FaultSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace veridp
