// Additional baseline edge cases: ATPG probe semantics, Monocle in_port
// handling, postcard accounting invariants.
#include <gtest/gtest.h>

#include "baseline/atpg.hpp"
#include "baseline/monocle.hpp"
#include "controller/routing.hpp"
#include "veridp/path_builder.hpp"
#include "testutil.hpp"

namespace veridp {
namespace {

TEST(AtpgExtra, ProbesSkipDropClasses) {
  // ATPG checks reception only: no probe may target a ⊥ outport.
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  const PathTable table = PathTableBuilder(space, topo, provider).build();
  Rng rng(8);
  const auto probes = baseline::generate_probes(table, rng);
  ASSERT_FALSE(probes.empty());
  for (const auto& p : probes) {
    EXPECT_NE(p.expected_exit.port, kDropPort);
    // Every probe header is admitted by some delivery entry of its pair.
    const auto* list = table.lookup(p.entry, p.expected_exit);
    ASSERT_NE(list, nullptr);
    bool admitted = false;
    for (const PathEntry& e : *list) admitted |= e.headers.contains(p.header);
    EXPECT_TRUE(admitted);
  }
}

TEST(AtpgExtra, ProbeCountMatchesDeliveryPathCount) {
  Topology topo = fat_tree(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  const PathTable table = PathTableBuilder(space, topo, provider).build();
  std::size_t delivery_paths = 0;
  table.for_each([&delivery_paths](PortKey, PortKey out, const PathEntry&) {
    if (out.port != kDropPort) ++delivery_paths;
  });
  Rng rng(9);
  EXPECT_EQ(baseline::generate_probes(table, rng).size(), delivery_paths);
}

TEST(MonocleExtra, InPortRulesAreSkipped) {
  HeaderSpace space;
  SwitchConfig cfg;
  Match pinned = Match::any();
  pinned.in_port = 2;
  cfg.table.add(FlowRule{1, 10, pinned, Action::output(1)});
  EXPECT_FALSE(baseline::generate_probe(space, cfg, 4, 1).has_value());
  const auto run = baseline::generate_all(space, cfg, 4);
  EXPECT_TRUE(run.probes.empty());
  EXPECT_EQ(run.skipped, 1u);
}

TEST(MonocleExtra, UnknownRuleYieldsNothing) {
  HeaderSpace space;
  SwitchConfig cfg;
  EXPECT_FALSE(baseline::generate_probe(space, cfg, 4, 42).has_value());
}

TEST(MonocleExtra, ProbeRespectsEqualPriorityTieBreak) {
  // Two equal-priority overlapping rules: the older wins ties, so the
  // newer is only probeable in its non-overlapping remainder.
  HeaderSpace space;
  SwitchConfig cfg;
  cfg.table.add(FlowRule{1, 10,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                         Action::output(1)});
  cfg.table.add(FlowRule{2, 10,
                         Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 9}),
                         Action::output(2)});
  auto probe = baseline::generate_probe(space, cfg, 4, 2);
  // Rule 2's prefix is inside rule 1's and loses the tie: fully shadowed.
  EXPECT_FALSE(probe.has_value());
  // Swap priorities: rule 2 becomes probeable.
  SwitchConfig cfg2;
  cfg2.table.add(FlowRule{1, 10,
                          Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 8}),
                          Action::output(1)});
  cfg2.table.add(FlowRule{2, 20,
                          Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 9}),
                          Action::output(2)});
  auto probe2 = baseline::generate_probe(space, cfg2, 4, 2);
  ASSERT_TRUE(probe2.has_value());
  EXPECT_EQ(probe2->expected_out, 2u);
  EXPECT_EQ(probe2->without_rule, 1u);
}

}  // namespace
}  // namespace veridp
