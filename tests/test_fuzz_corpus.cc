// Schedule + corpus serialization: the campaign-trace formats must be
// lossless (replay depends on byte-exact round-trips) and strict on
// malformed input (a hand-edited corpus entry must fail loudly, not
// silently mutate the schedule).
#include "fuzz/corpus.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/schedule.hpp"

namespace veridp {
namespace fuzz {
namespace {

FuzzSchedule complex_schedule() {
  FuzzSchedule s;
  s.seed = 0xdeadbeefcafef00dull;
  s.topo = "internet2";
  s.rounds = 9;
  s.copies = 4;
  s.probe_stride = 3;
  s.refine_rules = 11;
  s.edge_acls = 5;
  s.actions.push_back({1, MutationClass::kDropRule, 7, 9, 0, 0});
  s.actions.push_back({2, MutationClass::kReportCorrupt, 500, 0, 0, 0});
  s.actions.push_back({3, MutationClass::kInstallLoss, 250, 12345, 0, 0});
  s.actions.push_back({5, MutationClass::kPriorityShuffle, 4, 0, 61, 0});
  s.actions.push_back({0, MutationClass::kChurn, 63, 0, 0, 0});
  return s;
}

TEST(FuzzSchedule, SerializeParseRoundTripIsLossless) {
  const FuzzSchedule s = complex_schedule();
  const std::string text = serialize(s);
  const auto back = parse_schedule(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  // Byte-exact idempotence: re-serializing the parse yields the input.
  EXPECT_EQ(serialize(*back), text);
}

TEST(FuzzSchedule, EveryMutationClassNameRoundTrips) {
  for (std::size_t i = 0; i < kNumMutationClasses; ++i) {
    const auto cls = static_cast<MutationClass>(i);
    const auto back = mutation_class_from(to_string(cls));
    ASSERT_TRUE(back.has_value()) << to_string(cls);
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(mutation_class_from("no_such_class").has_value());
}

TEST(FuzzSchedule, ParseRejectsMalformedInput) {
  const std::string good = serialize(complex_schedule());
  EXPECT_TRUE(parse_schedule(good).has_value());
  EXPECT_FALSE(parse_schedule("").has_value());
  EXPECT_FALSE(parse_schedule("not-a-schedule\n").has_value());
  // Unknown action class.
  std::string bad = good;
  const auto at = bad.find("drop_rule");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 9, "drop_rulz");
  EXPECT_FALSE(parse_schedule(bad).has_value());
  // Garbage ordinal.
  std::string bad2 = good + "action 1 churn x 0 0 0\n";
  EXPECT_FALSE(parse_schedule(bad2).has_value());
}

TEST(FuzzCorpus, EntryRoundTripIsLossless) {
  CorpusEntry e;
  e.name = "fixture";
  e.schedule = complex_schedule();
  e.digest = 1234567890123456789ull;
  const std::string text = serialize_entry(e);
  const auto back = parse_entry(text, "fixture");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "fixture");
  EXPECT_EQ(back->digest, e.digest);
  EXPECT_EQ(back->schedule, e.schedule);
  EXPECT_EQ(serialize_entry(*back), text);
}

TEST(FuzzCorpus, ParseEntryRejectsMalformedPreamble) {
  const std::string good = serialize_entry(
      {"x", complex_schedule(), 42});
  EXPECT_TRUE(parse_entry(good, "x").has_value());
  EXPECT_FALSE(parse_entry("", "x").has_value());
  EXPECT_FALSE(parse_entry("veridp-fuzz-corpus v2\ndigest 1\n---\n", "x")
                   .has_value());
  EXPECT_FALSE(
      parse_entry("veridp-fuzz-corpus v1\ndigest nope\n---\n", "x")
          .has_value());
  // Missing separator.
  EXPECT_FALSE(
      parse_entry("veridp-fuzz-corpus v1\ndigest 1\n", "x").has_value());
}

TEST(FuzzCorpus, SaveLoadListThroughDisk) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "veridp_fuzz_corpus")
          .string();
  std::filesystem::remove_all(dir);

  CorpusEntry a{"bbb", complex_schedule(), 7};
  CorpusEntry b{"aaa", complex_schedule(), 9};
  b.schedule.seed = 99;
  ASSERT_TRUE(save_entry(dir, a));
  ASSERT_TRUE(save_entry(dir, b));
  // A stray non-corpus file must be ignored.
  std::ofstream(std::filesystem::path(dir) / "README.txt") << "not corpus";

  const auto paths = list_corpus(dir);
  ASSERT_EQ(paths.size(), 2u);
  // Sorted by path for deterministic replay order.
  EXPECT_LT(paths[0], paths[1]);

  const auto la = load_entry(paths[1]);
  ASSERT_TRUE(la.has_value());
  EXPECT_EQ(la->name, "bbb");
  EXPECT_EQ(la->digest, 7u);
  EXPECT_EQ(la->schedule, a.schedule);
  const auto lb = load_entry(paths[0]);
  ASSERT_TRUE(lb.has_value());
  EXPECT_EQ(lb->schedule.seed, 99u);

  EXPECT_FALSE(load_entry(dir + "/missing.fuzz").has_value());
  EXPECT_TRUE(list_corpus(dir + "/no_such_dir").empty());
  std::filesystem::remove_all(dir);
}

TEST(FuzzSchedule, Fnv1aIsStableAndCollisionResistantEnough) {
  EXPECT_EQ(fnv1a("veridp"), fnv1a("veridp"));
  EXPECT_NE(fnv1a("veridp"), fnv1a("veridq"));
  EXPECT_NE(fnv1a(""), fnv1a(" "));
  // Order matters (concatenation is not commutative mixing).
  EXPECT_NE(fnv1a("1:2"), fnv1a("2:1"));
}

}  // namespace
}  // namespace fuzz
}  // namespace veridp
