// ControlLoop unit + property tests: config validation, hysteresis
// (exact-threshold boundaries, no flapping inside a band), monotone
// regime transitions, bounded slew, anti-windup recovery, and the
// IngestGovernor observe → decide → actuate wiring.
#include "veridp/control_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "controller/routing.hpp"
#include "testutil.hpp"
#include "veridp/server.hpp"

namespace veridp {
namespace {

PressureSample sample(std::size_t depth, std::size_t cap,
                      std::uint64_t received = 0, std::uint64_t shed = 0,
                      std::uint64_t lost = 0) {
  PressureSample s;
  s.queue_depth = depth;
  s.queue_capacity = cap;
  s.received = received;
  s.shed = shed;
  s.lost_estimate = lost;
  return s;
}

TEST(ControlLoopConfig, ValidationRejectsDegenerateConfigs) {
  EXPECT_NO_THROW(ControlLoopConfig{}.validate());

  ControlLoopConfig c;
  c.setpoint = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.soft_exit = c.soft_enter;  // inverted hysteresis: exit must be below
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.hard_exit = c.hard_enter + 0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.slew_limit = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.max_sampling_factor = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.max_shed_modulus = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  EXPECT_THROW(ControlLoop{c}, std::invalid_argument)
      << "the constructor validates too";
}

TEST(ControlLoop, HysteresisBoundariesAreExact) {
  const ControlLoop loop;
  const ControlLoopConfig& c = loop.config();

  // Entering: exactly-at-threshold enters, one ulp below does not.
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kNormal, c.soft_enter),
            AdmissionRegime::kSoft);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kNormal,
                             std::nextafter(c.soft_enter, 0.0)),
            AdmissionRegime::kNormal);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kNormal, c.hard_enter),
            AdmissionRegime::kHard);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kSoft, c.hard_enter),
            AdmissionRegime::kHard);

  // Leaving: exactly-at-exit stays (exit requires strictly below).
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kSoft, c.soft_exit),
            AdmissionRegime::kSoft);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kSoft,
                             std::nextafter(c.soft_exit, 0.0)),
            AdmissionRegime::kNormal);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kHard, c.hard_exit),
            AdmissionRegime::kHard);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kHard,
                             std::nextafter(c.hard_exit, 0.0)),
            AdmissionRegime::kSoft);

  // Inside the dead band (exit <= p < enter) the regime is sticky: both
  // kNormal and kSoft are fixed points of the same pressure.
  const double inside = (c.soft_exit + c.soft_enter) / 2.0;
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kNormal, inside),
            AdmissionRegime::kNormal);
  EXPECT_EQ(loop.next_regime(AdmissionRegime::kSoft, inside),
            AdmissionRegime::kSoft);
}

TEST(ControlLoop, RegimeTransitionIsMonotoneInPressure) {
  const ControlLoop loop;
  std::mt19937 rng(0x5eed);
  std::uniform_real_distribution<double> dist(0.0, 1.2);
  for (AdmissionRegime cur : {AdmissionRegime::kNormal,
                              AdmissionRegime::kSoft,
                              AdmissionRegime::kHard}) {
    for (int i = 0; i < 2000; ++i) {
      double a = dist(rng), b = dist(rng);
      if (a > b) std::swap(a, b);
      EXPECT_LE(static_cast<int>(loop.next_regime(cur, a)),
                static_cast<int>(loop.next_regime(cur, b)))
          << "regime(" << to_string(cur) << ", " << a << ") > regime(.., "
          << b << ")";
    }
  }
}

TEST(ControlLoop, SeededNoiseInsideTheBandNeverFlapsTheRegime) {
  // Regression for the hysteresis requirement: pressure oscillating
  // between the exit and enter thresholds must cause at most ONE
  // transition (the initial entry), not one per oscillation.
  ControlLoopConfig cfg;
  cfg.ewma_alpha = 1.0;  // pass pressure through unsmoothed: worst case
  ControlLoop loop(cfg);
  std::mt19937 rng(0xf1a9);
  // Utilization noise in [soft_exit, soft_enter): the dead band.
  std::uniform_real_distribution<double> util(cfg.soft_exit,
                                              cfg.soft_enter - 0.01);
  const std::size_t cap = 1000;
  for (int t = 0; t < 500; ++t) {
    loop.tick(sample(static_cast<std::size_t>(util(rng) * cap), cap));
  }
  EXPECT_EQ(loop.transitions(), 0u)
      << "noise strictly inside the dead band must not move the regime";

  // Push over soft_enter once, then resume the same in-band noise: one
  // entry transition and nothing more.
  loop.tick(sample(static_cast<std::size_t>(cfg.soft_enter * cap) + 10, cap));
  ASSERT_EQ(loop.regime(), AdmissionRegime::kSoft);
  const std::uint64_t after_entry = loop.transitions();
  EXPECT_EQ(after_entry, 1u);
  for (int t = 0; t < 500; ++t) {
    loop.tick(sample(static_cast<std::size_t>(util(rng) * cap), cap));
  }
  EXPECT_EQ(loop.transitions(), after_entry)
      << "re-entering the dead band from above must not flap back";
}

TEST(ControlLoop, ExitRequiresDroppingBelowTheExitThreshold) {
  ControlLoopConfig cfg;
  cfg.ewma_alpha = 1.0;
  ControlLoop loop(cfg);
  const std::size_t cap = 1000;
  loop.tick(sample(static_cast<std::size_t>(cfg.soft_enter * cap) + 1, cap));
  ASSERT_EQ(loop.regime(), AdmissionRegime::kSoft);
  // One tick above exit: still soft (watermark boundary, not below it).
  loop.tick(sample(static_cast<std::size_t>(cfg.soft_exit * cap) + 1, cap));
  EXPECT_EQ(loop.regime(), AdmissionRegime::kSoft);
  // Strictly below exit: back to normal.
  loop.tick(sample(0, cap));
  EXPECT_EQ(loop.regime(), AdmissionRegime::kNormal);
  EXPECT_EQ(loop.transitions(), 2u);
}

TEST(ControlLoop, SamplingFactorSlewIsBounded) {
  ControlLoopConfig cfg;
  cfg.ewma_alpha = 1.0;
  ControlLoop loop(cfg);
  const std::size_t cap = 100;
  double prev = loop.sampling_factor();
  EXPECT_DOUBLE_EQ(prev, 1.0);
  // Alternate full-queue and empty-queue ticks: the commanded factor may
  // move, but never by more than 2^slew_limit per tick.
  for (int t = 0; t < 100; ++t) {
    const ControlDecision d = loop.tick(sample(t % 2 ? cap : 0, cap));
    const double ratio = d.sampling_factor / prev;
    EXPECT_LE(ratio, std::exp2(cfg.slew_limit) + 1e-9);
    EXPECT_GE(ratio, std::exp2(-cfg.slew_limit) - 1e-9);
    EXPECT_GE(d.sampling_factor, 1.0 - 1e-9);
    EXPECT_LE(d.sampling_factor, cfg.max_sampling_factor + 1e-9);
    prev = d.sampling_factor;
  }
}

TEST(ControlLoop, AntiWindupRecoversPromptlyAfterSustainedSaturation) {
  ControlLoopConfig cfg;
  cfg.ewma_alpha = 1.0;
  ControlLoop loop(cfg);
  const std::size_t cap = 100;
  // Sustained overload: the actuator rails at max_sampling_factor.
  for (int t = 0; t < 200; ++t) loop.tick(sample(cap, cap));
  EXPECT_NEAR(loop.sampling_factor(), cfg.max_sampling_factor, 1e-6);
  // Pressure collapses. With conditional integration the accumulator
  // never wound past what saturation could use, so the factor must be
  // back at 1.0 within the slew-limited minimum plus a small margin.
  const double decades = std::log2(cfg.max_sampling_factor);
  const int min_ticks = static_cast<int>(std::ceil(decades / cfg.slew_limit));
  int t = 0;
  for (; t < 10 * min_ticks; ++t) {
    loop.tick(sample(0, cap));
    if (loop.sampling_factor() <= 1.0 + 1e-6) break;
  }
  EXPECT_LE(t, 3 * min_ticks)
      << "windup: the integrator kept the factor pinned after pressure fell";
}

TEST(ControlLoop, ControllerConvergesOnAFakeQueueModel) {
  // Discrete plant: arrivals/tick scale inversely with the commanded
  // sampling factor; the server drains a fixed budget per tick. The
  // closed loop must settle the queue near the setpoint utilization
  // instead of oscillating between empty and full.
  ControlLoop loop;
  const std::size_t cap = 1024;
  const double offered = 400.0;  // reports/tick at factor 1 — over budget
  const double drain = 150.0;
  double depth = 0.0;
  std::uint64_t received = 0;
  double factor = 1.0;
  for (int t = 0; t < 300; ++t) {
    const double arrivals = offered / factor;
    received += static_cast<std::uint64_t>(arrivals);
    depth = std::min(static_cast<double>(cap),
                     std::max(0.0, depth + arrivals - drain));
    const ControlDecision d =
        loop.tick(sample(static_cast<std::size_t>(depth), cap, received));
    factor = d.sampling_factor;
  }
  EXPECT_GT(factor, 1.0) << "an over-budget plant needs a back-off";
  EXPECT_NEAR(loop.pressure(), loop.config().setpoint, 0.15)
      << "closed loop should settle near the setpoint";
  EXPECT_EQ(loop.regime(), AdmissionRegime::kNormal)
      << "a converged loop does not need regime degradation";
}

TEST(ControlLoop, ShedModulusIsMonotoneAcrossTheSoftBand) {
  ControlLoopConfig cfg;
  cfg.ewma_alpha = 1.0;
  ControlLoop loop(cfg);
  const std::size_t cap = 1000;
  // Enter soft, then ramp pressure: the commanded modulus never shrinks.
  std::uint32_t prev_mod = 0;
  for (double u = cfg.soft_enter; u < cfg.hard_enter; u += 0.02) {
    const ControlDecision d =
        loop.tick(sample(static_cast<std::size_t>(u * cap), cap));
    if (d.regime != AdmissionRegime::kSoft) continue;
    EXPECT_GE(d.shed_modulus, 2u);
    EXPECT_GE(d.shed_modulus, prev_mod) << "modulus must ramp with pressure";
    EXPECT_EQ(d.shed_modulus & (d.shed_modulus - 1), 0u) << "power of two";
    prev_mod = d.shed_modulus;
  }
  EXPECT_GT(prev_mod, 0u) << "the sweep must have visited kSoft";
}

TEST(ControlLoop, TraceIsBoundedAndOrdered) {
  ControlLoopConfig cfg;
  cfg.trace_keep = 16;
  ControlLoop loop(cfg);
  for (int t = 0; t < 100; ++t) loop.tick(sample(0, 10));
  EXPECT_EQ(loop.trace().size(), cfg.trace_keep);
  EXPECT_EQ(loop.trace().back().tick, 99u);
  EXPECT_EQ(loop.trace().front().tick, 100u - cfg.trace_keep);
}

TEST(IngestGovernor, ObserveDecideActuateWiring) {
  Topology topo = linear(3);
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);

  IngestConfig icfg;
  icfg.capacity = 64;
  icfg.high_watermark = 32;
  ReportIngest ingest(server, icfg);

  ControlLoopConfig ccfg;
  ccfg.ewma_alpha = 1.0;
  IngestGovernor governor(ingest, ccfg);
  double commanded = 0.0;
  int commands = 0;
  governor.set_sampling_sink([&](double f) {
    commanded = f;
    ++commands;
  });

  // Idle ticks: normal regime, no sampling command (factor stays 1).
  for (int t = 0; t < 3; ++t) governor.tick();
  EXPECT_TRUE(ingest.governed());
  EXPECT_EQ(ingest.regime(), AdmissionRegime::kNormal);
  EXPECT_EQ(commands, 0) << "no change → no southbound command";

  // Flood the queue without processing, then tick: pressure ≥ 1 must
  // push the regime machine to kHard and command a back-off.
  const auto r = net.inject(
      testutil::header(Ipv4::of(10, 0, 0, 1), Ipv4::of(10, 0, 2, 1)),
      PortKey{0, 3});
  ASSERT_EQ(r.reports.size(), 1u);
  TagReport base = r.reports.front();
  for (std::uint32_t s = 2; s < 200; ++s) {
    TagReport rep = base;
    rep.seq = s;
    ingest.offer_report(rep);
  }
  ASSERT_EQ(ingest.queue_depth(), icfg.capacity);
  const ControlDecision d = governor.tick();
  EXPECT_EQ(d.regime, AdmissionRegime::kHard);
  EXPECT_EQ(ingest.regime(), AdmissionRegime::kHard);
  EXPECT_GT(commands, 0);
  EXPECT_GT(commanded, 1.0);
  EXPECT_EQ(ingest.health().regime_transitions, 1u);

  // Drain and relax: hysteresis walks the regime back to normal.
  ingest.process();
  for (int t = 0; t < 50; ++t) governor.tick();
  EXPECT_EQ(ingest.regime(), AdmissionRegime::kNormal);
  EXPECT_EQ(ingest.health().regime_transitions, 2u)
      << "normal → hard → normal, each edge counted exactly once";
}

}  // namespace
}  // namespace veridp
