// Workload-synthesis tests: rule scaling stays loop-free and consistent;
// traffic generators cover what they claim.
#include "veridp/workload.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "controller/routing.hpp"
#include "dataplane/network.hpp"
#include "topo/generators.hpp"
#include "veridp/path_builder.hpp"
#include "veridp/verifier.hpp"

namespace veridp {
namespace {

TEST(Workload, HostInPicksMemberAddress) {
  EXPECT_EQ(workload::host_in(Prefix{Ipv4::of(10, 1, 0, 0), 16}),
            Ipv4::of(10, 1, 0, 1));
  EXPECT_EQ(workload::host_in(Prefix{Ipv4::of(10, 1, 2, 3), 32}),
            Ipv4::of(10, 1, 2, 3));
}

TEST(Workload, PingAllCoversOrderedPairs) {
  const Topology topo = linear(3);
  const auto flows = workload::ping_all(topo);
  EXPECT_EQ(flows.size(), 3u * 2u);
  for (const auto& f : flows) {
    ASSERT_TRUE(topo.is_edge_port(f.entry));
    const auto subnet = topo.subnet(f.entry);
    ASSERT_TRUE(subnet.has_value());
    EXPECT_TRUE(subnet->contains(f.header.src_ip));
    EXPECT_NE(f.header.src_ip, f.header.dst_ip);
  }
}

TEST(Workload, RandomFlowsStayInsideSubnets) {
  const Topology topo = internet2_like(3);
  Rng rng(9);
  const auto flows = workload::random_flows(topo, rng, 200);
  ASSERT_EQ(flows.size(), 200u);
  for (const auto& f : flows) {
    const auto subnet = topo.subnet(f.entry);
    ASSERT_TRUE(subnet.has_value());
    EXPECT_TRUE(subnet->contains(f.header.src_ip));
  }
}

TEST(Workload, AddSpecificRulesGrowsRuleCount) {
  Topology topo = internet2_like(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  const std::size_t base = c.num_rules();
  Rng rng(31);
  const std::size_t added = workload::add_specific_rules(c, rng, 500);
  EXPECT_GT(added, 400u);  // a few duplicates may be skipped
  EXPECT_EQ(c.num_rules(), base + added);
  // All added rules are dst-prefix-only with priority == prefix length
  // (the incremental updater's fragment).
  for (SwitchId s = 0; s < topo.num_switches(); ++s)
    for (const FlowRule& r : c.logical(s).table.rules()) {
      EXPECT_TRUE(r.match.is_dst_prefix_only());
      EXPECT_EQ(r.priority, r.match.dst.len);
    }
}

TEST(Workload, SpecificRulesAreLoopFreeAndConsistent) {
  // The load-bearing property: ECMP-based refinement must never create
  // loops, and (with both planes deployed identically) every ping must
  // still verify against the rebuilt path table.
  Topology topo = fat_tree(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Rng rng(77);
  workload::add_specific_rules(c, rng, 300, 33 - 8, 32);  // host-level /32s
  // Fat-tree subnets are /32 already, so refinements need len > 32 —
  // impossible; expect zero additions there.
  EXPECT_EQ(c.num_rules(), 16u * 20u);

  // Internet2 has /16 subnets: refinements apply.
  Topology i2 = internet2_like(3);
  Controller c2(i2);
  routing::install_shortest_paths(c2);
  Rng rng2(78);
  const std::size_t added = workload::add_specific_rules(c2, rng2, 400);
  EXPECT_GT(added, 300u);
  Network net(i2);
  c2.deploy(net);
  HeaderSpace space;
  ConfigTransferProvider provider(space, i2, c2.logical_configs());
  const PathTable table = PathTableBuilder(space, i2, provider).build();
  Verifier v(table);
  Rng rng3(79);
  for (const auto& f : workload::random_flows(i2, rng3, 400)) {
    const auto r = net.inject(f.header, f.entry);
    EXPECT_NE(r.disposition, Disposition::kTtlExpired)
        << "refinement introduced a loop for " << f.header.str();
    for (const TagReport& rep : r.reports)
      EXPECT_TRUE(v.verify(rep).ok()) << f.header.str();
  }
}

TEST(Workload, EdgeAclsLandOnEdgePorts) {
  Topology topo = stanford_like(14, 2);
  Controller c(topo);
  Rng rng(55);
  const std::size_t added = workload::add_edge_acls(c, rng, 50);
  EXPECT_EQ(added, 50u);
  std::size_t entries = 0;
  for (SwitchId s = 0; s < topo.num_switches(); ++s)
    for (const auto& [port, acl] : c.logical(s).in_acls) {
      EXPECT_TRUE(topo.is_edge_port(PortKey{s, port}));
      entries += acl.entries().size();
    }
  EXPECT_EQ(entries, 50u);
}

TEST(Workload, SpecificRulesRespectPrefixUniquenessPerSwitch) {
  Topology topo = internet2_like(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  Rng rng(91);
  workload::add_specific_rules(c, rng, 600);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    std::unordered_set<std::uint64_t> seen;
    for (const FlowRule& r : c.logical(s).table.rules()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(r.match.dst.len) << 32) |
          r.match.dst.addr;
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate prefix at switch " << s;
    }
  }
}

}  // namespace
}  // namespace veridp
