// PathTable container tests: merging, lookup, erasure, stats, invariants.
#include "veridp/path_table.hpp"

#include <gtest/gtest.h>

namespace veridp {
namespace {

class PathTableTest : public ::testing::Test {
 protected:
  HeaderSpace space;
  PathTable table;

  HeaderSet dst24(std::uint8_t b) {
    return space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, b, 0), 24});
  }
  static std::vector<Hop> path1() { return {{1, 0, 2}, {1, 1, 3}}; }
  static std::vector<Hop> path2() { return {{1, 0, 3}, {2, 2, 3}}; }
  static BloomTag tag_of(const std::vector<Hop>& p) {
    BloomTag t(16);
    for (const Hop& h : p) t.insert(h);
    return t;
  }
};

TEST_F(PathTableTest, AddAndLookup) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  const auto* list = table.lookup(PortKey{0, 1}, PortKey{1, 3});
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].path, path1());
  EXPECT_EQ((*list)[0].tag, tag_of(path1()));
  EXPECT_EQ(table.lookup(PortKey{0, 2}, PortKey{1, 3}), nullptr);
  EXPECT_EQ(table.lookup(PortKey{0, 1}, PortKey{9, 9}), nullptr);
}

TEST_F(PathTableTest, SamePathMergesHeaders) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path1(),
                 tag_of(path1()));
  const auto* list = table.lookup(PortKey{0, 1}, PortKey{1, 3});
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].headers, (dst24(1) | dst24(2)));
}

TEST_F(PathTableTest, DistinctPathsStaySeparate) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path2(),
                 tag_of(path2()));
  EXPECT_EQ(table.lookup(PortKey{0, 1}, PortKey{1, 3})->size(), 2u);
  EXPECT_TRUE(table.disjoint_headers());
}

TEST_F(PathTableTest, DisjointnessCheckerDetectsOverlap) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path2(),
                 tag_of(path2()));
  EXPECT_FALSE(table.disjoint_headers());
}

TEST_F(PathTableTest, StatsCountPairsPathsAndLength) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path2(),
                 tag_of(path2()));
  table.add_path(PortKey{0, 2}, PortKey{2, 3}, dst24(3), {{2, 0, 3}},
                 tag_of({{2, 0, 3}}));
  const auto s = table.stats();
  EXPECT_EQ(s.num_pairs, 2u);
  EXPECT_EQ(s.num_paths, 3u);
  EXPECT_DOUBLE_EQ(s.avg_path_length, (2 + 2 + 1) / 3.0);
}

TEST_F(PathTableTest, EraseInportDropsAllItsEntries) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 2}, PortKey{1, 3}, dst24(2), path1(),
                 tag_of(path1()));
  table.erase_inport(PortKey{0, 1});
  EXPECT_EQ(table.lookup(PortKey{0, 1}, PortKey{1, 3}), nullptr);
  ASSERT_NE(table.lookup(PortKey{0, 2}, PortKey{1, 3}), nullptr);
  EXPECT_EQ(table.stats().num_pairs, 1u);
}

TEST_F(PathTableTest, RemovePathPrunesEmptyLevels) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  EXPECT_FALSE(table.remove_path(PortKey{0, 1}, PortKey{1, 3}, path2()));
  EXPECT_TRUE(table.remove_path(PortKey{0, 1}, PortKey{1, 3}, path1()));
  EXPECT_EQ(table.lookup(PortKey{0, 1}, PortKey{1, 3}), nullptr);
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.remove_path(PortKey{0, 1}, PortKey{1, 3}, path1()));
}

TEST_F(PathTableTest, ForEachVisitsEverything) {
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(),
                 tag_of(path1()));
  table.add_path(PortKey{0, 2}, PortKey{2, 3}, dst24(2), path2(),
                 tag_of(path2()));
  int visits = 0;
  table.for_each([&visits](PortKey, PortKey, const PathEntry&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

TEST_F(PathTableTest, OutportsAreSortedAndComplete) {
  table.add_path(PortKey{0, 1}, PortKey{2, 3}, dst24(1), path2(),
                 tag_of(path2()));
  table.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path1(),
                 tag_of(path1()));
  const auto outs = table.outports(PortKey{0, 1});
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], (PortKey{1, 3}));
  EXPECT_EQ(outs[1], (PortKey{2, 3}));
  EXPECT_TRUE(table.outports(PortKey{5, 5}).empty());
}

TEST_F(PathTableTest, EquivalenceIsOrderInsensitive) {
  PathTable a, b;
  a.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(), tag_of(path1()));
  a.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path2(), tag_of(path2()));
  b.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path2(), tag_of(path2()));
  b.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(), tag_of(path1()));
  EXPECT_TRUE(equivalent(a, b));
  b.add_path(PortKey{0, 2}, PortKey{1, 3}, dst24(3), path1(), tag_of(path1()));
  EXPECT_FALSE(equivalent(a, b));
}

TEST_F(PathTableTest, EquivalenceDetectsHeaderDifference) {
  PathTable a, b;
  a.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(1), path1(), tag_of(path1()));
  b.add_path(PortKey{0, 1}, PortKey{1, 3}, dst24(2), path1(), tag_of(path1()));
  EXPECT_FALSE(equivalent(a, b));
}

}  // namespace
}  // namespace veridp
