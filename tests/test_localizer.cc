// Fault-localization tests (Algorithm 4): the Figure-7 walkthrough plus a
// randomized fat-tree sweep measuring recovery of the real path.
#include "veridp/localizer.hpp"

#include <gtest/gtest.h>

#include "controller/routing.hpp"
#include "dataplane/fault.hpp"
#include "testutil.hpp"
#include "veridp/path_builder.hpp"
#include "veridp/verifier.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

using testutil::header;

// The Figure-7 scenario: correct path S1->S2->S4; S1 faultily outputs to
// port 4, so the real path is S1->S3->S6 where the packet is dropped.
class Figure7 : public ::testing::Test {
 protected:
  Figure7() : topo(grid_figure7()), controller(topo), net(topo) {
    s1 = topo.find("S1");
    s2 = topo.find("S2");
    s3 = topo.find("S3");
    s4 = topo.find("S4");
    s5 = topo.find("S5");
    s6 = topo.find("S6");
    const Prefix dst{Ipv4::of(10, 0, 2, 1), 32};
    // Controller-intended path S1(2)->S2(2)->S4(3).
    r_s1 = controller.add_rule(s1, 32, Match::dst_prefix(dst), Action::output(2));
    controller.add_rule(s2, 32, Match::dst_prefix(dst), Action::output(2));
    controller.add_rule(s4, 32, Match::dst_prefix(dst), Action::output(3));
    // Downstream switches of the *faulty* branch: S3 forwards to S6 and
    // S6 has no rule (drop) — also part of the logical configs so that
    // Algorithm 4's healthy-downstream walks can follow them.
    controller.add_rule(s3, 32, Match::dst_prefix(dst), Action::output(3));
    // S5 forwards toward S6 as in the paper's probe of S2's alternates.
    controller.add_rule(s5, 32, Match::dst_prefix(dst), Action::output(3));
    controller.deploy(net);
  }

  Topology topo;
  Controller controller;
  Network net;
  SwitchId s1, s2, s3, s4, s5, s6;
  RuleId r_s1;
};

TEST_F(Figure7, LocalizesS1AndRecoversRealPath) {
  FaultInjector inject(net);
  ASSERT_TRUE(inject.rewrite_rule_output(s1, r_s1, 4));  // the paper's fault

  const PacketHeader h = header(Ipv4::of(10, 0, 1, 1), Ipv4::of(10, 0, 2, 1));
  const auto result = net.inject(h, PortKey{s1, 1});
  EXPECT_EQ(result.disposition, Disposition::kDropped);
  const std::vector<Hop> real{{1, s1, 4}, {1, s3, 3}, {1, s6, kDropPort}};
  EXPECT_EQ(result.path, real);
  ASSERT_EQ(result.reports.size(), 1u);

  // Verification fails (wrong exit pair for this header).
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, controller.logical_configs());
  PathTable table = PathTableBuilder(space, topo, provider).build();
  Verifier v(table);
  EXPECT_FALSE(v.verify(result.reports[0]).ok());

  // Algorithm 4 recovers the real path and blames S1.
  Localizer loc(topo, controller.logical_configs());
  const auto inferred = loc.infer(result.reports[0]);
  EXPECT_TRUE(inferred.recovered(real));
  bool blamed_s1 = false;
  for (const Candidate& c : inferred.candidates)
    if (c.path == real) blamed_s1 = (c.deviating_switch == s1);
  EXPECT_TRUE(blamed_s1);
}

TEST_F(Figure7, NoFaultMeansCleanVerification) {
  const PacketHeader h = header(Ipv4::of(10, 0, 1, 1), Ipv4::of(10, 0, 2, 1));
  const auto result = net.inject(h, PortKey{s1, 1});
  EXPECT_EQ(result.disposition, Disposition::kDelivered);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, controller.logical_configs());
  PathTable table = PathTableBuilder(space, topo, provider).build();
  Verifier v(table);
  EXPECT_TRUE(v.verify(result.reports[0]).ok());
}

TEST_F(Figure7, MidPathFaultAtS2IsLocalized) {
  // Fault at S2 instead: output to S5 (port 3) rather than S4 (port 2).
  FaultInjector inject(net);
  const auto& rules = net.at(s2).config().table.rules();
  ASSERT_EQ(rules.size(), 1u);
  ASSERT_TRUE(inject.rewrite_rule_output(s2, rules[0].id, 3));

  const PacketHeader h = header(Ipv4::of(10, 0, 1, 1), Ipv4::of(10, 0, 2, 1));
  const auto result = net.inject(h, PortKey{s1, 1});
  // Real path: S1 -> S2 -> S5 -> S6 -> drop.
  const std::vector<Hop> real{
      {1, s1, 2}, {1, s2, 3}, {1, s5, 3}, {2, s6, kDropPort}};
  EXPECT_EQ(result.path, real);
  Localizer loc(topo, controller.logical_configs());
  const auto inferred = loc.infer(result.reports[0]);
  EXPECT_TRUE(inferred.recovered(real));
}

TEST(Localizer, LogicalWalkFollowsControlPlane) {
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  const auto path =
      logical_walk(topo, c.logical_configs(), PortKey{0, 3},
                   header(Ipv4::of(10, 0, 0, 1), Ipv4::of(10, 0, 2, 1)));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[2].out, 3u);
}

// Randomized sweep: rewire one random rule in a fat tree, ping across it,
// and require a high localization rate (Table 3's experiment in
// miniature). Aggregated over several faults because a single unlucky
// rewire can turn every affected ping into a TTL-expired loop, whose
// 16-hop real path is by design not recoverable.
TEST(Localizer, FatTreeSweepRecoversMostRealPaths) {
  Topology topo = fat_tree(4);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  ConfigTransferProvider provider(space, topo, c.logical_configs());
  PathTable table = PathTableBuilder(space, topo, provider).build();
  Verifier v(table);
  Localizer loc(topo, c.logical_configs());
  const auto flows = workload::ping_all(topo);

  Rng rng(4242);
  std::size_t failed = 0, recovered = 0, loops = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Network net(topo);
    c.deploy(net);
    FaultInjector inject(net);
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 200);
      const SwitchId sw =
          static_cast<SwitchId>(rng.index(topo.num_switches()));
      const auto& rules = net.at(sw).config().table.rules();
      if (rules.empty()) continue;
      const FlowRule& victim = rules[rng.index(rules.size())];
      const PortId wrong =
          static_cast<PortId>(1 + rng.index(topo.num_ports(sw)));
      if (wrong == victim.action.out) continue;
      if (inject.rewrite_rule_output(sw, victim.id, wrong)) break;
    }
    for (const auto& flow : flows) {
      const auto r = net.inject(flow.header, flow.entry);
      for (const TagReport& rep : r.reports) {
        if (v.verify(rep).ok()) continue;
        ++failed;
        if (r.disposition == Disposition::kTtlExpired) ++loops;
        if (loc.infer(rep).recovered(r.path)) ++recovered;
      }
    }
  }
  ASSERT_GT(failed, 0u) << "no fault perturbed any ping";
  // Non-loop failures must be recovered at a Table-3-like rate.
  const std::size_t recoverable = failed - loops;
  ASSERT_GT(recoverable, 0u);
  EXPECT_GE(static_cast<double>(recovered),
            0.9 * static_cast<double>(recoverable));
}

// Per-fault-class localization precision: one deterministic instance of
// every switch-state FaultKind on the linear chain, with the faulted
// switch in the middle so upstream tags exist. Every failing report
// must produce at least one candidate blaming exactly the faulted
// switch — this is the precision component of the fuzzing campaign's
// scorecard, pinned per class.
class PerClassBlame : public ::testing::Test {
 protected:
  PerClassBlame() : topo(linear(5)), ctrl(topo), net(topo) {
    routing::install_shortest_paths(ctrl);
  }

  void deploy() { ctrl.deploy(net); }

  // Verifies every ping report against the logical plane; failures are
  // localized and scored against `faulty`.
  void sweep(SwitchId faulty) {
    HeaderSpace space;
    ConfigTransferProvider provider(space, topo, ctrl.logical_configs());
    PathTable table = PathTableBuilder(space, topo, provider).build();
    Verifier v(table);
    Localizer loc(topo, ctrl.logical_configs());
    for (const auto& f : workload::ping_all(topo)) {
      const auto r = net.inject(f.header, f.entry);
      for (const TagReport& rep : r.reports) {
        if (v.verify(rep).ok()) continue;
        ++failed;
        bool hit = false;
        for (const Candidate& cand : loc.infer(rep).candidates)
          hit = hit || cand.deviating_switch == faulty;
        if (hit) ++blamed;
      }
    }
  }

  // The rule at `sw` routing toward subnet 10.0.0.0/24 (port-1 egress
  // for every middle switch) — a victim whose loss every left-bound
  // ping notices.
  RuleId victim_toward_subnet0(SwitchId sw) {
    for (const FlowRule& r : net.at(sw).config().table.rules())
      if (r.match.dst == Prefix{Ipv4::of(10, 0, 0, 0), 24}) return r.id;
    ADD_FAILURE() << "no rule toward subnet 0 at S" << sw;
    return kNoRule;
  }

  Topology topo;
  Controller ctrl;
  Network net;
  std::size_t failed = 0, blamed = 0;
};

TEST_F(PerClassBlame, DropRuleIsBlamedPrecisely) {
  deploy();
  FaultInjector inject(net);
  ASSERT_TRUE(inject.drop_rule(2, victim_toward_subnet0(2)));
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

TEST_F(PerClassBlame, ReplaceWithDropIsBlamedPrecisely) {
  deploy();
  FaultInjector inject(net);
  ASSERT_TRUE(inject.replace_with_drop(2, victim_toward_subnet0(2)));
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

TEST_F(PerClassBlame, RewriteOutputIsBlamedPrecisely) {
  deploy();
  FaultInjector inject(net);
  // Left-bound traffic at S2 detours out the edge port: delivered at
  // the wrong subnet, a clean (loop-free) deviation.
  ASSERT_TRUE(inject.rewrite_rule_output(2, victim_toward_subnet0(2), 3));
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

TEST_F(PerClassBlame, ExternalRuleIsBlamedPrecisely) {
  deploy();
  FaultInjector inject(net);
  inject.insert_external_rule(
      2, FlowRule{888888, 500000,
                  Match::dst_prefix(Prefix{Ipv4::of(10, 0, 0, 0), 24}),
                  Action::output(3)});
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

TEST_F(PerClassBlame, IgnorePriorityIsBlamedPrecisely) {
  // A consistent high-priority blackhole appended to BOTH planes after
  // deploy: honoring priorities drops (logical behaviour), the broken
  // oldest-inserted-wins mode forwards via the older routing rule.
  deploy();
  const Prefix target{Ipv4::of(10, 0, 0, 0), 24};
  const RuleId bh =
      ctrl.add_rule(2, 200000, Match::dst_prefix(target), Action::drop());
  const FlowRule* lr = ctrl.logical(2).table.find(bh);
  ASSERT_NE(lr, nullptr);
  net.at(2).config().table.add(*lr);
  FaultInjector inject(net);
  inject.ignore_priority(2);
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

TEST_F(PerClassBlame, RemoveAclEntryIsBlamedPrecisely) {
  // Logical plane filters left-bound web traffic entering S2; the
  // physical ACL loses the deny entry, so filtered flows leak through.
  Match m;
  m.src = Prefix{Ipv4::of(10, 0, 4, 0), 24};
  m.dst = Prefix{Ipv4::of(10, 0, 0, 0), 24};
  ctrl.set_in_acl(2, 2, Acl{}.deny(m));
  deploy();
  FaultInjector inject(net);
  ASSERT_TRUE(inject.remove_acl_entry(2, 2, /*inbound=*/true, 0));
  sweep(2);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(blamed, failed);
}

}  // namespace
}  // namespace veridp
