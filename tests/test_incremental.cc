// Incremental path-table update tests (§4.4). The load-bearing property:
// after any sequence of rule adds/deletes, the incrementally-maintained
// path table is structurally identical to a from-scratch rebuild.
#include "veridp/incremental.hpp"

#include <gtest/gtest.h>

#include "controller/routing.hpp"
#include "testutil.hpp"
#include "veridp/verifier.hpp"
#include "veridp/workload.hpp"

namespace veridp {
namespace {

using testutil::header;

RuleEvent add_ev(SwitchId sw, RuleId id, const Prefix& p, PortId out) {
  return RuleEvent{RuleEvent::Kind::kAdd, sw,
                   FlowRule{id, p.len, Match::dst_prefix(p),
                            out == kDropPort ? Action::drop()
                                             : Action::output(out)}};
}

RuleEvent del_ev(SwitchId sw, RuleId id) {
  RuleEvent ev;
  ev.kind = RuleEvent::Kind::kDelete;
  ev.sw = sw;
  ev.rule.id = id;
  ev.rule.match = Match::dst_prefix(Prefix{});
  return ev;
}

TEST(Incremental, InitializeMatchesConfigBuild) {
  // On a dst-prefix-only workload the flow-forest initialization must
  // equal the ConfigTransferProvider full build.
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;

  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());

  ConfigTransferProvider provider(space, topo, c.logical_configs());
  const PathTable full = PathTableBuilder(space, topo, provider).build();
  EXPECT_TRUE(equivalent(upd.table(), full));
  EXPECT_TRUE(upd.consistent_with_rebuild());
  EXPECT_GT(upd.num_flow_nodes(), 0u);
}

TEST(Incremental, AddRuleRedirectsTraffic) {
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());

  // A /32 inside subnet 2, delivered out a *different* edge port... the
  // linear chain has one edge per switch; steer it to port 1 at switch 2
  // is a link port — instead blackhole it (drop rule), a common update.
  const Prefix victim{Ipv4::of(10, 0, 2, 7), 32};
  const auto stats = upd.apply(add_ev(2, 900, victim, kDropPort));
  EXPECT_GT(stats.nodes_touched, 0u);
  EXPECT_TRUE(upd.consistent_with_rebuild());

  // The new drop path exists and verifies like the data plane would act.
  Verifier v(upd.table());
  const auto* drops = upd.table().lookup(PortKey{0, 3}, PortKey{2, kDropPort});
  ASSERT_NE(drops, nullptr);
  bool found = false;
  for (const PathEntry& e : *drops)
    if (e.headers.contains(header(Ipv4::of(10, 0, 0, 1), Ipv4::of(10, 0, 2, 7))))
      found = true;
  EXPECT_TRUE(found);
}

TEST(Incremental, DeleteRuleRestoresPreviousTable) {
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());

  IncrementalUpdater reference(space, topo);
  reference.initialize(c.logical_configs());

  const Prefix p{Ipv4::of(10, 0, 1, 64), 26};
  upd.apply(add_ev(0, 901, p, 2));
  upd.apply(del_ev(0, 901));
  EXPECT_TRUE(equivalent(upd.table(), reference.table()));
  EXPECT_TRUE(upd.consistent_with_rebuild());
}

TEST(Incremental, DuplicatePrefixAddIsNoOp) {
  Topology topo = linear(2);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());
  // Subnet 0's own /24 is already present at switch 0.
  const auto stats =
      upd.apply(add_ev(0, 902, Prefix{Ipv4::of(10, 0, 0, 0), 24}, 1));
  EXPECT_EQ(stats.nodes_touched, 0u);
  EXPECT_TRUE(upd.consistent_with_rebuild());
}

TEST(Incremental, SamePortRefinementTouchesNothing) {
  // A more-specific rule pointing at the SAME port as its parent moves
  // headers from a port to itself: the path table must not change.
  Topology topo = linear(3);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());
  IncrementalUpdater reference(space, topo);
  reference.initialize(c.logical_configs());

  // At switch 0, subnet 2 routes out port 2; refine with a /28 to port 2.
  const auto stats =
      upd.apply(add_ev(0, 903, Prefix{Ipv4::of(10, 0, 2, 16), 28}, 2));
  EXPECT_EQ(stats.nodes_touched, 0u);
  EXPECT_TRUE(equivalent(upd.table(), reference.table()));
}

// The big property sweep: random update sequences on several topologies,
// incremental table == rebuild after every step.
struct SweepCase {
  std::uint64_t seed;
  int topo_kind;  // 0 = linear(4), 1 = fat_tree(4), 2 = internet2_like(3)
};

class IncrementalSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static Topology make_topo(int kind) {
    switch (kind) {
      case 0: return linear(4);
      case 1: return fat_tree(4);
      default: return internet2_like(3);
    }
  }
};

TEST_P(IncrementalSweep, RandomUpdatesStayEquivalentToRebuild) {
  const auto [seed, kind] = GetParam();
  Topology topo = make_topo(kind);
  Controller c(topo);
  routing::install_shortest_paths(c);
  HeaderSpace space;
  IncrementalUpdater upd(space, topo);
  upd.initialize(c.logical_configs());

  Rng rng(seed);
  const auto& subnets = topo.subnets();
  std::vector<RuleEvent> live;  // added events eligible for deletion
  RuleId next_id = 10000;

  for (int round = 0; round < 25; ++round) {
    if (!live.empty() && rng.chance(0.35)) {
      const std::size_t i = rng.index(live.size());
      upd.apply(del_ev(live[i].sw, live[i].rule.id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const auto& [port, subnet] = subnets[rng.index(subnets.size())];
      (void)port;
      if (subnet.len >= 30) continue;
      const auto len = static_cast<std::uint8_t>(
          rng.uniform(subnet.len + 1, std::min(30, subnet.len + 8)));
      const Prefix p{subnet.addr |
                         (static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)) &
                          ~Prefix::mask(subnet.len)),
                     len};
      const SwitchId sw = static_cast<SwitchId>(rng.index(topo.num_switches()));
      // Random output port or drop; loops are legal (builder cuts them).
      const PortId out = rng.chance(0.2)
                             ? kDropPort
                             : static_cast<PortId>(rng.uniform(1, topo.num_ports(sw)));
      const RuleEvent ev = add_ev(sw, next_id++, p, out);
      upd.apply(ev);
      live.push_back(ev);
    }
    // Equivalence checked every few rounds (rebuilds are costly).
    if (round % 5 == 4) {
      ASSERT_TRUE(upd.consistent_with_rebuild()) << "round " << round;
    }
  }
  EXPECT_TRUE(upd.consistent_with_rebuild());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IncrementalSweep,
    ::testing::Values(SweepCase{1, 0}, SweepCase{2, 0}, SweepCase{3, 1},
                      SweepCase{4, 1}, SweepCase{5, 2}, SweepCase{6, 2},
                      SweepCase{7, 1}, SweepCase{8, 2}));

}  // namespace
}  // namespace veridp
