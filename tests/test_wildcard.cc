// Wildcard (ternary cube) set tests: correctness against the BDD
// representation, and the §4.1 blow-up facts (dst_port != 22 needs 16
// cubes).
#include "header/wildcard.hpp"

#include "bloom/xor_tag.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "header/header_set.hpp"

namespace veridp {
namespace {

PacketHeader random_header(Rng& rng) {
  PacketHeader h;
  h.src_ip = Ipv4{static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff))};
  h.dst_ip = Ipv4::of(10, static_cast<std::uint8_t>(rng.uniform(0, 3)),
                      static_cast<std::uint8_t>(rng.uniform(0, 255)),
                      static_cast<std::uint8_t>(rng.uniform(0, 255)));
  h.proto = rng.chance(0.5) ? kProtoTcp : kProtoUdp;
  h.src_port = static_cast<std::uint16_t>(rng.uniform(0, 65535));
  h.dst_port = static_cast<std::uint16_t>(rng.uniform(20, 25));
  return h;
}

TEST(TernaryCube, AnyMatchesEverything) {
  const TernaryCube c = TernaryCube::any();
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(c.matches(random_header(rng)));
}

TEST(TernaryCube, FieldConstraint) {
  TernaryCube c = TernaryCube::any();
  c.constrain_field(Field::DstPort, 22);
  PacketHeader h;
  h.dst_port = 22;
  EXPECT_TRUE(c.matches(h));
  h.dst_port = 23;
  EXPECT_FALSE(c.matches(h));
}

TEST(TernaryCube, PrefixConstraint) {
  TernaryCube c = TernaryCube::any();
  c.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  PacketHeader h;
  h.dst_ip = Ipv4::of(10, 1, 200, 3);
  EXPECT_TRUE(c.matches(h));
  h.dst_ip = Ipv4::of(10, 2, 200, 3);
  EXPECT_FALSE(c.matches(h));
}

TEST(TernaryCube, IntersectConflictAndCover) {
  TernaryCube a = TernaryCube::any();
  a.constrain_field(Field::DstPort, 22);
  TernaryCube b = TernaryCube::any();
  b.constrain_field(Field::DstPort, 80);
  EXPECT_FALSE(a.intersect(b).has_value());

  TernaryCube wide = TernaryCube::any();
  wide.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, 0, 0), 8});
  TernaryCube narrow = TernaryCube::any();
  narrow.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  auto both = wide.intersect(narrow);
  ASSERT_TRUE(both);
  EXPECT_EQ(*both, narrow);
}

TEST(WildcardSet, NotEqualsNeedsSixteenCubes) {
  // The paper's §4.1 example: dst_port != 22 is a union of 16 wildcard
  // expressions (one per bit of the 16-bit field).
  TernaryCube ssh = TernaryCube::any();
  ssh.constrain_field(Field::DstPort, 22);
  const WildcardSet ne22 = WildcardSet::all().subtract(WildcardSet::of(ssh));
  EXPECT_EQ(ne22.num_cubes(), 16u);
  PacketHeader h;
  h.dst_port = 22;
  EXPECT_FALSE(ne22.contains(h));
  h.dst_port = 80;
  EXPECT_TRUE(ne22.contains(h));
}

TEST(WildcardSet, SubtractionIsExact) {
  TernaryCube ten8 = TernaryCube::any();
  ten8.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, 0, 0), 8});
  TernaryCube ten1_16 = TernaryCube::any();
  ten1_16.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  const WildcardSet rest =
      WildcardSet::of(ten8).subtract(WildcardSet::of(ten1_16));
  PacketHeader h;
  h.dst_ip = Ipv4::of(10, 1, 2, 3);
  EXPECT_FALSE(rest.contains(h));
  h.dst_ip = Ipv4::of(10, 2, 2, 3);
  EXPECT_TRUE(rest.contains(h));
  h.dst_ip = Ipv4::of(11, 0, 0, 1);
  EXPECT_FALSE(rest.contains(h));
}

TEST(WildcardSet, UnionPrunesSubsumedCubes) {
  TernaryCube wide = TernaryCube::any();
  wide.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, 0, 0), 8});
  TernaryCube narrow = TernaryCube::any();
  narrow.constrain_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  const WildcardSet u =
      WildcardSet::of(narrow).unite(WildcardSet::of(wide));
  EXPECT_EQ(u.num_cubes(), 1u);
}

// The agreement property: wildcard algebra == BDD algebra on random
// operation trees, checked pointwise on random headers.
class WildcardVsBdd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WildcardVsBdd, OperationsAgreePointwise) {
  HeaderSpace space;
  Rng rng(GetParam());

  auto random_atom = [&rng, &space]() -> std::pair<WildcardSet, HeaderSet> {
    TernaryCube c = TernaryCube::any();
    HeaderSet h = space.all();
    if (rng.chance(0.7)) {
      const Prefix p{Ipv4::of(10, static_cast<std::uint8_t>(rng.uniform(0, 3)),
                              static_cast<std::uint8_t>(rng.uniform(0, 255)), 0),
                     static_cast<std::uint8_t>(rng.uniform(8, 24))};
      c.constrain_prefix(Field::DstIp, p);
      h &= space.ip_prefix(Field::DstIp, p);
    }
    if (rng.chance(0.4)) {
      const std::uint16_t port = static_cast<std::uint16_t>(rng.uniform(20, 25));
      c.constrain_field(Field::DstPort, port);
      h &= space.field_eq(Field::DstPort, port);
    }
    return {WildcardSet::of(c), h};
  };

  for (int round = 0; round < 8; ++round) {
    auto [wa, ba] = random_atom();
    auto [wb, bb] = random_atom();
    const auto pairs = {
        std::pair{wa.unite(wb), ba | bb},
        std::pair{wa.intersect(wb), ba & bb},
        std::pair{wa.subtract(wb), ba - bb},
    };
    for (const auto& [wset, bset] : pairs) {
      for (int t = 0; t < 40; ++t) {
        const PacketHeader h = random_header(rng);
        EXPECT_EQ(wset.contains(h), bset.contains(h)) << h.str();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WildcardVsBdd,
                         ::testing::Values(3, 6, 9, 12, 15));

TEST(XorHashTag, DetectsPathChangesButHidesMembership) {
  // Companion to bench/ablation_tagging: XOR-hash tags are order-
  // insensitive accumulators that compare equal iff the hop multisets'
  // hashes cancel identically — good enough for detection...
  XorHashTag a(16), b(16);
  a.insert(Hop{1, 0, 2});
  a.insert(Hop{1, 1, 3});
  b.insert(Hop{1, 1, 3});
  b.insert(Hop{1, 0, 2});
  EXPECT_EQ(a, b);  // commutative like the Bloom OR
  XorHashTag c(16);
  c.insert(Hop{1, 0, 2});
  c.insert(Hop{1, 2, 3});  // different second hop
  EXPECT_FALSE(a == c);
  // ...but an even number of traversals of the same hop cancels out:
  // a loop of period 2 through the same hop pair is INVISIBLE, while a
  // Bloom OR keeps the bits set.
  XorHashTag looped = a;
  looped.insert(Hop{9, 9, 9});
  looped.insert(Hop{9, 9, 9});
  EXPECT_EQ(looped, a);
}

}  // namespace
}  // namespace veridp
