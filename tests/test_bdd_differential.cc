// Randomized differential suite for the BDD engine: thousands of seeded
// op sequences (and/or/xor/diff/not/ite/exists/cube) are replayed
// simultaneously against
//   (1) a brute-force truth-table oracle over <= 12 variables,
//   (2) the pooled engine,
//   (3) the pooled engine with a pathologically degraded hash, and
//   (4) the legacy engine (ref-for-ref equality with the pooled one).
// Every produced ref is expanded to its full truth table (memoized
// Shannon expansion — O(nodes), not O(2^n) evals) and compared bit-wise;
// canonicity is asserted as a bijection between truth tables and refs.
//
// The executable carries the `concurrency` label (the TSan preset runs
// it): the last tests hammer the read-side ops — including the
// shared_mutex-guarded sat_count memo — from many threads.
#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace veridp {
namespace {

constexpr int kMaxVars = 12;

// A truth table over n <= 12 variables: bit `idx` of the table is the
// formula's value under the assignment where variable v = bit v of idx.
// 2^12 bits = 64 words; tables over fewer variables use a prefix.
struct TT {
  std::array<std::uint64_t, 64> w{};
  int nvars = 0;

  static int words(int n) { return n <= 6 ? 1 : 1 << (n - 6); }
  static std::uint64_t word_mask(int n) {
    return n >= 6 ? ~0ULL : (1ULL << (1 << n)) - 1;
  }

  static TT falsum(int n) { return TT{{}, n}; }
  static TT verum(int n) {
    TT t{{}, n};
    for (int i = 0; i < words(n); ++i) t.w[static_cast<std::size_t>(i)] = ~0ULL;
    t.w[static_cast<std::size_t>(words(n) - 1)] = word_mask(n);
    return t;
  }
  static TT literal(int n, int v, bool positive) {
    TT t{{}, n};
    for (std::uint32_t idx = 0; idx < (1u << n); ++idx)
      if ((((idx >> v) & 1u) != 0) == positive) t.set(idx);
    return t;
  }

  bool get(std::uint32_t idx) const {
    return (w[idx >> 6] >> (idx & 63)) & 1u;
  }
  void set(std::uint32_t idx) { w[idx >> 6] |= 1ULL << (idx & 63); }

  friend bool operator==(const TT& a, const TT& b) {
    if (a.nvars != b.nvars) return false;
    for (int i = 0; i < words(a.nvars); ++i)
      if (a.w[static_cast<std::size_t>(i)] != b.w[static_cast<std::size_t>(i)])
        return false;
    return true;
  }
};

TT tt_binop(const TT& a, const TT& b, int op) {
  TT r{{}, a.nvars};
  for (int i = 0; i < TT::words(a.nvars); ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    switch (op) {
      case 0: r.w[s] = a.w[s] & b.w[s]; break;
      case 1: r.w[s] = a.w[s] | b.w[s]; break;
      case 2: r.w[s] = a.w[s] ^ b.w[s]; break;
      default: r.w[s] = a.w[s] & ~b.w[s]; break;
    }
  }
  return r;
}

TT tt_not(const TT& a) {
  TT r{{}, a.nvars};
  for (int i = 0; i < TT::words(a.nvars); ++i)
    r.w[static_cast<std::size_t>(i)] = ~a.w[static_cast<std::size_t>(i)];
  r.w[static_cast<std::size_t>(TT::words(a.nvars) - 1)] &=
      TT::word_mask(a.nvars);
  return r;
}

TT tt_exists(TT t, int first_var, int count) {
  for (int v = first_var; v < first_var + count && v < t.nvars; ++v) {
    TT out = TT::falsum(t.nvars);
    for (std::uint32_t idx = 0; idx < (1u << t.nvars); ++idx)
      if (t.get(idx) || t.get(idx ^ (1u << v))) out.set(idx);
    t = out;
  }
  return t;
}

TT tt_cube(int n, int first_var, std::uint64_t bits, int width, int len) {
  TT t = TT::verum(n);
  // cube() reads the top `len` bits of `bits` MSB-first within `width`.
  for (int i = 0; i < len; ++i) {
    const bool bit = (bits >> (width - 1 - i)) & 1u;
    t = tt_binop(t, TT::literal(n, first_var + i, bit), 0);
  }
  return t;
}

// Memoized Shannon expansion BDD -> truth table. Canonical refs make the
// memo safe for the whole manager lifetime.
struct Expander {
  const BddManager& m;
  int nvars;
  std::unordered_map<BddRef, TT> memo;

  const TT& expand(BddRef r) {
    auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    TT t{{}, nvars};
    if (r == kBddFalse) {
      t = TT::falsum(nvars);
    } else if (r == kBddTrue) {
      t = TT::verum(nvars);
    } else {
      const int v = m.top_var(r);
      const TT pos = TT::literal(nvars, v, true);
      const TT lo = expand(m.low_of(r));
      const TT hi = expand(m.high_of(r));
      t = tt_binop(tt_binop(pos, hi, 0), tt_binop(lo, pos, 3), 1);
    }
    return memo.emplace(r, t).first->second;
  }
};

// One op drawn for a sequence step. All random draws happen ONCE here so
// the same op can be replayed against several engines and the oracle.
struct Step {
  int kind;  // 0..3 binop, 4 not, 5 ite, 6 exists, 7 cube
  std::size_t i, j, k;
  int var, count, width, len;
  std::uint64_t bits;

  static Step draw(Rng& rng, std::size_t pool, int nvars) {
    Step s{};
    s.kind = static_cast<int>(rng.index(8));
    s.i = rng.index(pool);
    s.j = rng.index(pool);
    s.k = rng.index(pool);
    s.var = static_cast<int>(rng.index(static_cast<std::size_t>(nvars)));
    s.count = 1 + static_cast<int>(rng.index(3));
    s.width = 1 + static_cast<int>(
                      rng.index(static_cast<std::size_t>(nvars - s.var)));
    s.len = 1 + static_cast<int>(rng.index(static_cast<std::size_t>(s.width)));
    s.bits = rng.uniform(0, (1ULL << s.width) - 1);
    return s;
  }
};

BddRef run_step(BddManager& m, const std::vector<BddRef>& pool,
                const Step& s) {
  switch (s.kind) {
    case 0: return m.apply_and(pool[s.i], pool[s.j]);
    case 1: return m.apply_or(pool[s.i], pool[s.j]);
    case 2: return m.apply_xor(pool[s.i], pool[s.j]);
    case 3: return m.apply_diff(pool[s.i], pool[s.j]);
    case 4: return m.apply_not(pool[s.i]);
    case 5: return m.ite(pool[s.i], pool[s.j], pool[s.k]);
    case 6: return m.exists(pool[s.i], s.var, s.count);
    default: return m.cube(s.var, s.bits, s.width, s.len);
  }
}

TT oracle_step(const std::vector<TT>& pool, const Step& s, int nvars) {
  switch (s.kind) {
    case 0: case 1: case 2: case 3:
      return tt_binop(pool[s.i], pool[s.j], s.kind);
    case 4: return tt_not(pool[s.i]);
    case 5:
      return tt_binop(tt_binop(pool[s.i], pool[s.j], 0),
                      tt_binop(pool[s.k], pool[s.i], 3), 1);
    case 6: return tt_exists(pool[s.i], s.var, s.count);
    default: return tt_cube(nvars, s.var, s.bits, s.width, s.len);
  }
}

// The workhorse: runs `sequences` seeded sequences of `steps` ops each,
// against the oracle and (optionally) a second engine in lockstep.
void run_differential(std::uint64_t seed_base, int sequences, int steps,
                      bool degrade_hash, bool lockstep_legacy) {
  for (int seq = 0; seq < sequences; ++seq) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(seq);
    Rng rng(seed);
    const int nvars = 8 + static_cast<int>(rng.index(5));  // 8..12
    BddManager m(nvars);
    if (degrade_hash)
      m.degrade_hash_for_test(1 + static_cast<int>(rng.index(4)));
    BddManager legacy(nvars, Engine::kLegacy);
    Expander ex{m, nvars, {}};

    std::vector<BddRef> pool{kBddFalse, kBddTrue};
    std::vector<BddRef> pool_l = pool;
    std::vector<TT> tts{TT::falsum(nvars), TT::verum(nvars)};
    // Canonicity: truth table <-> ref must stay a bijection.
    std::map<std::array<std::uint64_t, 64>, BddRef> canon;
    canon.emplace(tts[0].w, kBddFalse);
    canon.emplace(tts[1].w, kBddTrue);
    for (int v = 0; v < nvars; ++v) {
      pool.push_back(m.var(v));
      if (lockstep_legacy) pool_l.push_back(legacy.var(v));
      tts.push_back(TT::literal(nvars, v, true));
      canon.emplace(tts.back().w, pool.back());
    }

    for (int st = 0; st < steps; ++st) {
      const Step s = Step::draw(rng, pool.size(), nvars);
      const BddRef r = run_step(m, pool, s);
      const TT expect = oracle_step(tts, s, nvars);

      // Semantics: the BDD's truth table equals the oracle's.
      ASSERT_EQ(ex.expand(r), expect)
          << "seed " << seed << " step " << st << " kind " << s.kind;
      // Canonicity: same function <-> same ref.
      const auto [it, inserted] = canon.emplace(expect.w, r);
      ASSERT_EQ(it->second, r)
          << "canonicity violated at seed " << seed << " step " << st;

      if (lockstep_legacy) {
        const BddRef rl = run_step(legacy, pool_l, s);
        ASSERT_EQ(rl, r) << "engine divergence at seed " << seed << " step "
                         << st;
        pool_l.push_back(rl);
      }
      pool.push_back(r);
      tts.push_back(expect);
    }
  }
}

// 5000+ sequences split across shards so a failure pins a narrow seed
// range. 4000 plain + 800 degraded-hash + 400 legacy-lockstep = 5200.
TEST(BddDifferential, PooledMatchesTruthTableOracle) {
  run_differential(/*seed_base=*/1000, /*sequences=*/4000, /*steps=*/14,
                   /*degrade_hash=*/false, /*lockstep_legacy=*/false);
}

TEST(BddDifferential, DegradedHashMatchesTruthTableOracle) {
  run_differential(/*seed_base=*/900000, /*sequences=*/800, /*steps=*/14,
                   /*degrade_hash=*/true, /*lockstep_legacy=*/false);
}

TEST(BddDifferential, LegacyLockstepRefEquality) {
  run_differential(/*seed_base=*/500000, /*sequences=*/400, /*steps=*/14,
                   /*degrade_hash=*/false, /*lockstep_legacy=*/true);
}

// ---- Read-side concurrency (TSan target) ------------------------------

TEST(BddDifferential, ConcurrentSatCountAndEvalOnSharedManager) {
  // Build a moderately sized BDD, then hammer the read-side contract:
  // sat_count (shared_mutex memo), eval_with, pick and size from many
  // threads at once. Under TSan this proves the shared_mutex swap left
  // no write race on the memo.
  BddManager m(16);
  Rng rng(0x5A7C0);
  std::vector<BddRef> roots;
  for (int i = 0; i < 32; ++i) {
    BddRef r = m.cube(0, rng.uniform(0, 65535), 16, 10);
    r = m.apply_or(r, m.cube(4, rng.uniform(0, 4095), 12, 12));
    roots.push_back(r);
  }
  std::vector<double> expect;
  expect.reserve(roots.size());
  // Warm nothing: every thread starts with a cold memo on some root.
  std::vector<std::thread> pool;
  std::vector<std::vector<double>> got(8);
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&m, &roots, &got, t] {
      got[static_cast<std::size_t>(t)].reserve(roots.size());
      for (std::size_t i = 0; i < roots.size(); ++i) {
        const BddRef r = roots[(i + static_cast<std::size_t>(t)) %
                               roots.size()];
        const double c = m.sat_count(r);
        (void)m.eval_with(r, [i](int v) { return ((i >> v) & 1u) != 0; });
        (void)m.size(r);
        (void)m.pick_one(r);
        got[static_cast<std::size_t>(t)].push_back(c);
      }
    });
  }
  for (auto& th : pool) th.join();
  for (const BddRef r : roots) expect.push_back(m.sat_count(r));
  for (int t = 0; t < 8; ++t)
    for (std::size_t i = 0; i < roots.size(); ++i)
      EXPECT_DOUBLE_EQ(
          got[static_cast<std::size_t>(t)][i],
          expect[(i + static_cast<std::size_t>(t)) % roots.size()]);
}

}  // namespace
}  // namespace veridp
