// IPv4 address / prefix unit tests.
#include "common/ip.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace veridp {
namespace {

TEST(Ipv4, OfBuildsHostOrderValue) {
  EXPECT_EQ(Ipv4::of(10, 0, 1, 2).value, 0x0A000102u);
  EXPECT_EQ(Ipv4::of(255, 255, 255, 255).value, 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4::of(0, 0, 0, 0).value, 0u);
}

TEST(Ipv4, ParseRoundTrip) {
  for (const char* s : {"0.0.0.0", "10.0.1.2", "172.20.10.33", "255.255.255.255"}) {
    auto ip = parse_ipv4(s);
    ASSERT_TRUE(ip.has_value()) << s;
    EXPECT_EQ(to_string(*ip), s);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  for (const char* s : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                        "1..2.3", "1.2.3.4 ", "-1.2.3.4"}) {
    EXPECT_FALSE(parse_ipv4(s).has_value()) << s;
  }
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix::mask(0), 0u);
  EXPECT_EQ(Prefix::mask(8), 0xFF000000u);
  EXPECT_EQ(Prefix::mask(20), 0xFFFFF000u);
  EXPECT_EQ(Prefix::mask(32), 0xFFFFFFFFu);
}

TEST(Prefix, ConstructorZeroesHostBits) {
  const Prefix p{Ipv4::of(10, 1, 2, 3), 16};
  EXPECT_EQ(p.addr, Ipv4::of(10, 1, 0, 0).value);
  EXPECT_EQ(p, (Prefix{Ipv4::of(10, 1, 255, 255), 16}));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p{Ipv4::of(10, 0, 0, 0), 8};
  EXPECT_TRUE(p.contains(Ipv4::of(10, 63, 16, 1)));
  EXPECT_FALSE(p.contains(Ipv4::of(11, 0, 0, 1)));
  EXPECT_TRUE(Prefix{}.contains(Ipv4::of(1, 2, 3, 4)));  // /0 contains all
}

TEST(Prefix, ContainsPrefixIsPartialOrder) {
  const Prefix a{Ipv4::of(10, 0, 0, 0), 8};
  const Prefix b{Ipv4::of(10, 1, 0, 0), 16};
  const Prefix c{Ipv4::of(11, 0, 0, 0), 8};
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_FALSE(a.contains(c));
  EXPECT_TRUE(a.contains(a));  // reflexive
}

TEST(Prefix, ParseFormats) {
  auto p = parse_prefix("10.1.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->len, 16);
  EXPECT_EQ(to_string(*p), "10.1.0.0/16");
  auto host = parse_prefix("10.1.2.3");
  ASSERT_TRUE(host);
  EXPECT_EQ(host->len, 32);
  EXPECT_FALSE(parse_prefix("10.1.0.0/33").has_value());
  EXPECT_FALSE(parse_prefix("10.1.0.0/").has_value());
  EXPECT_FALSE(parse_prefix("/8").has_value());
}

TEST(PortKey, FormattingAndDropPort) {
  EXPECT_EQ(to_string(PortKey{3, 2}), "<S3, 2>");
  EXPECT_EQ(to_string(PortKey{3, kDropPort}), "<S3, _|_>");
  EXPECT_EQ(to_string(Hop{1, 2, 3}), "<1, S2, 3>");
  EXPECT_EQ(to_string(Hop{1, 2, kDropPort}), "<1, S2, _|_>");
}

TEST(PortKey, OrderingAndHash) {
  const PortKey a{1, 2}, b{1, 3}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(std::hash<PortKey>{}(a), std::hash<PortKey>{}(b));
}

// Property sweep: every address inside a prefix is contained; the first
// address outside is not.
class PrefixSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PrefixSweep, ContainmentBoundary) {
  const std::uint8_t len = GetParam();
  const Prefix p{Ipv4::of(192, 168, 4, 0), len};
  EXPECT_TRUE(p.contains(Ipv4{p.addr}));
  if (len > 0) {
    const std::uint32_t size = len == 0 ? 0 : (1u << (32 - len));
    EXPECT_TRUE(p.contains(Ipv4{p.addr + size - 1}));
    EXPECT_FALSE(p.contains(Ipv4{p.addr + size}));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixSweep,
                         ::testing::Values(1, 4, 8, 12, 16, 20, 24, 28, 31));

}  // namespace
}  // namespace veridp
