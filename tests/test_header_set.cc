// HeaderSet tests: field constructors, algebra, membership, sampling.
#include "header/header_set.hpp"

#include <gtest/gtest.h>

namespace veridp {
namespace {

PacketHeader mk(Ipv4 src, Ipv4 dst, std::uint8_t proto, std::uint16_t sp,
                std::uint16_t dp) {
  return PacketHeader{src, dst, proto, sp, dp};
}

class HeaderSetTest : public ::testing::Test {
 protected:
  HeaderSpace space;
};

TEST_F(HeaderSetTest, AllAndNone) {
  EXPECT_TRUE(space.all().is_all());
  EXPECT_TRUE(space.none().empty());
  EXPECT_TRUE(space.all().contains(mk(Ipv4::of(1, 2, 3, 4), Ipv4::of(5, 6, 7, 8),
                                      kProtoTcp, 1, 2)));
}

TEST_F(HeaderSetTest, FieldEq) {
  const HeaderSet s = space.field_eq(Field::DstPort, 22);
  EXPECT_TRUE(s.contains(mk({}, {}, kProtoTcp, 5, 22)));
  EXPECT_FALSE(s.contains(mk({}, {}, kProtoTcp, 5, 23)));
  // Exactly 2^(104-16) headers.
  EXPECT_DOUBLE_EQ(s.count(), std::exp2(104 - 16));
}

TEST_F(HeaderSetTest, IpPrefix) {
  const Prefix p{Ipv4::of(10, 0, 2, 0), 24};
  const HeaderSet s = space.ip_prefix(Field::DstIp, p);
  EXPECT_TRUE(s.contains(mk({}, Ipv4::of(10, 0, 2, 1), kProtoTcp, 0, 0)));
  EXPECT_FALSE(s.contains(mk({}, Ipv4::of(10, 0, 3, 1), kProtoTcp, 0, 0)));
  EXPECT_DOUBLE_EQ(s.count(), std::exp2(104 - 24));
  // /0 prefix is the universal set.
  EXPECT_TRUE(space.ip_prefix(Field::SrcIp, Prefix{}).is_all());
}

TEST_F(HeaderSetTest, PrefixNesting) {
  const HeaderSet wide =
      space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, 0, 0), 8});
  const HeaderSet narrow =
      space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  EXPECT_TRUE(narrow.subset_of(wide));
  EXPECT_FALSE(wide.subset_of(narrow));
  EXPECT_EQ((narrow & wide), narrow);
  EXPECT_EQ((narrow | wide), wide);
}

TEST_F(HeaderSetTest, ComplementMakesDstPortNe22) {
  // The paper's Table-1 example: dst_port != 22.
  const HeaderSet ne22 = ~space.field_eq(Field::DstPort, 22);
  EXPECT_FALSE(ne22.contains(mk({}, {}, kProtoTcp, 0, 22)));
  EXPECT_TRUE(ne22.contains(mk({}, {}, kProtoTcp, 0, 80)));
  EXPECT_DOUBLE_EQ(ne22.count(), std::exp2(104) - std::exp2(104 - 16));
}

TEST_F(HeaderSetTest, SingletonHasExactlyOneMember) {
  const PacketHeader h =
      mk(Ipv4::of(10, 0, 1, 1), Ipv4::of(10, 0, 2, 1), kProtoTcp, 4242, 22);
  const HeaderSet s = space.singleton(h);
  EXPECT_DOUBLE_EQ(s.count(), 1.0);
  EXPECT_TRUE(s.contains(h));
  auto member = s.any_member();
  ASSERT_TRUE(member);
  EXPECT_EQ(*member, h);
}

TEST_F(HeaderSetTest, SampleIsAlwaysMember) {
  Rng rng(99);
  const HeaderSet s =
      space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 2, 0, 0), 16}) &
      space.field_eq(Field::Proto, kProtoUdp);
  for (int i = 0; i < 100; ++i) {
    auto h = s.sample(rng);
    ASSERT_TRUE(h);
    EXPECT_TRUE(s.contains(*h));
    EXPECT_EQ(h->proto, kProtoUdp);
    EXPECT_TRUE((Prefix{Ipv4::of(10, 2, 0, 0), 16}).contains(h->dst_ip));
  }
  EXPECT_FALSE(space.none().sample(rng).has_value());
}

TEST_F(HeaderSetTest, DifferenceAndXor) {
  const HeaderSet a = space.field_eq(Field::Proto, kProtoTcp);
  const HeaderSet b = space.field_eq(Field::DstPort, 80);
  const HeaderSet tcp_not_80 = a - b;
  EXPECT_TRUE(tcp_not_80.contains(mk({}, {}, kProtoTcp, 0, 81)));
  EXPECT_FALSE(tcp_not_80.contains(mk({}, {}, kProtoTcp, 0, 80)));
  EXPECT_EQ((a ^ b), ((a | b) - (a & b)));
}

TEST_F(HeaderSetTest, EmptyIntersectionOfDisjointPrefixes) {
  const HeaderSet a =
      space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 0, 0, 0), 16});
  const HeaderSet b =
      space.ip_prefix(Field::DstIp, Prefix{Ipv4::of(10, 1, 0, 0), 16});
  EXPECT_TRUE((a & b).empty());
  EXPECT_TRUE((a - b) == a);
}

// ---- Range sweep property ------------------------------------------------

struct RangeCase {
  std::uint64_t lo, hi;
};

class FieldRange : public ::testing::TestWithParam<RangeCase> {
 protected:
  HeaderSpace space;
};

TEST_P(FieldRange, MembershipMatchesArithmetic) {
  const auto [lo, hi] = GetParam();
  const HeaderSet s = space.field_range(Field::DstPort, lo, hi);
  // Check boundary and interior points.
  for (std::uint64_t v :
       {std::uint64_t{0}, lo > 0 ? lo - 1 : 0, lo, (lo + hi) / 2, hi,
        hi < 65535 ? hi + 1 : std::uint64_t{65535}, std::uint64_t{65535}}) {
    const bool expect = v >= lo && v <= hi;
    EXPECT_EQ(s.contains(mk({}, {}, kProtoTcp, 0,
                            static_cast<std::uint16_t>(v))),
              expect)
        << "v=" << v;
  }
  EXPECT_DOUBLE_EQ(s.count(),
                   std::exp2(104 - 16) * static_cast<double>(hi - lo + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, FieldRange,
    ::testing::Values(RangeCase{0, 0}, RangeCase{0, 1023}, RangeCase{22, 22},
                      RangeCase{22, 80}, RangeCase{1024, 65535},
                      RangeCase{0, 65535}, RangeCase{65535, 65535},
                      RangeCase{1, 65534}));

// ---- Match/contains agreement property -----------------------------------

TEST_F(HeaderSetTest, BitEncodingRoundTrip) {
  Rng rng(123);
  for (int t = 0; t < 200; ++t) {
    PacketHeader h;
    h.src_ip = Ipv4{static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff))};
    h.dst_ip = Ipv4{static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff))};
    h.proto = static_cast<std::uint8_t>(rng.uniform(0, 255));
    h.src_port = static_cast<std::uint16_t>(rng.uniform(0, 65535));
    h.dst_port = static_cast<std::uint16_t>(rng.uniform(0, 65535));
    std::vector<bool> bits(kHeaderBits);
    for (int v = 0; v < kHeaderBits; ++v)
      bits[static_cast<std::size_t>(v)] = h.bit(v);
    EXPECT_EQ(header_from_bits(bits), h);
  }
}

}  // namespace
}  // namespace veridp
