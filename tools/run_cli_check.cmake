# Test runner for veridp_cli smoke tests: asserts the command BOTH
# exits 0 AND prints the expected summary line(s). ctest's
# PASS_REGULAR_EXPRESSION property *replaces* the exit-code check (a
# crashing run that already printed the line would pass), so the CLI
# smoke tests go through this script instead:
#
#   cmake -DCLI=<exe> -DARGS="<args>" -DEXPECT=<regex>
#         [-DEXPECT2=<regex>] [-DEXPECT3=<regex>] -P run_cli_check.cmake
if(NOT DEFINED CLI OR NOT DEFINED ARGS OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "run_cli_check: need -DCLI, -DARGS and -DEXPECT")
endif()

separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${CLI}" ${arg_list}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_cli_check: '${CLI} ${ARGS}' exited with "
                      "'${rc}'\n--- stdout ---\n${out}\n--- stderr ---\n${err}")
endif()

foreach(var EXPECT EXPECT2 EXPECT3)
  if(DEFINED ${var} AND NOT out MATCHES "${${var}}")
    message(FATAL_ERROR "run_cli_check: '${CLI} ${ARGS}' exited 0 but "
                        "its output does not match /${${var}}/\n"
                        "--- stdout ---\n${out}")
  endif()
endforeach()
