#!/usr/bin/env python3
"""CI gate over BENCH_parallel_verify.json: fail when the parallel
verification pipeline stops scaling.

The JSON carries two speedup families per stream (see the bench header
in bench/ablation_parallel_verify.cc):

  * pipeline_wall_speedup — measured wall-clock speedup of the lane
    pipeline. Physically bounded by the host's core count, so it is the
    gating metric only when the host actually has >= the swept thread
    count of cores.
  * projected_speedup — the load-balance projection derived from
    per-worker thread-CPU time (critical-path shrinkage assuming one
    core per worker). Used as the fallback gate on small hosts, where
    it is the only scaling signal the hardware can produce.

Usage:
  check_scaling.py BENCH_parallel_verify.json --threads 4 --min-speedup 2.0
  check_scaling.py out.json --threads 4 --min-speedup 2.0 --stream zipf_skewed
  check_scaling.py out.json --threads 4 --min-speedup 2.0 --metric projected
"""
import argparse
import json
import sys


def pick_metric(doc: dict, threads: int, forced: str | None) -> str:
    if forced in ("wall", "projected"):
        return forced
    hw = int(doc.get("hardware_concurrency", 1))
    return "wall" if hw >= threads else "projected"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path")
    ap.add_argument("--threads", type=int, default=4,
                    help="sweep point to gate on (default: 4)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="required speedup at --threads (default: 2.0)")
    ap.add_argument("--stream", default="uniform_memo_miss",
                    help="stream name to gate on "
                         "(default: uniform_memo_miss)")
    ap.add_argument("--metric", choices=["auto", "wall", "projected"],
                    default="auto",
                    help="auto: wall when the recorded "
                         "hardware_concurrency covers --threads, else "
                         "projected (default)")
    args = ap.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)

    streams = {s["name"]: s for s in doc.get("streams", [])}
    if args.stream not in streams:
        print(f"FAIL: stream {args.stream!r} not in {sorted(streams)}")
        return 1
    points = {p["threads"]: p for p in streams[args.stream]["points"]}
    if args.threads not in points:
        print(f"FAIL: no {args.threads}-thread point "
              f"(have {sorted(points)})")
        return 1
    point = points[args.threads]

    metric = pick_metric(doc, args.threads, None if args.metric == "auto"
                         else args.metric)
    key = ("pipeline_wall_speedup" if metric == "wall"
           else "projected_speedup")
    speedup = float(point[key])

    hw = int(doc.get("hardware_concurrency", 1))
    print(f"{args.stream} @ {args.threads} threads "
          f"(host cores: {hw}, metric: {metric}): "
          f"{key} = {speedup:.2f}x, floor {args.min_speedup:.2f}x")
    prof = point.get("profile", {})
    if prof:
        print(f"  attribution: wait_fraction={prof.get('wait_fraction')}, "
              f"batch_occupancy={prof.get('batch_occupancy')}, "
              f"stolen_items={prof.get('stolen_items')}, "
              f"lock_acquisitions={prof.get('lock_acquisitions')}")
    if speedup < args.min_speedup:
        print("FAIL: parallel verification no longer scales — see the "
              "profile attribution above for where the time went")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
