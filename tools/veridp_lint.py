#!/usr/bin/env python3
"""veridp_lint: domain-specific static checks for the VeriDP tree.

Pure-Python, zero dependencies (the container has no libclang); a small
lexer strips comments and string literals so rules match only real code.
Rules encode lessons this codebase has already paid for (DESIGN.md §8):

  raw-lock
      No bare `.lock()` / `.unlock()` / `.try_lock()` calls outside the
      RAII wrappers in src/common/thread_annotations.hpp. Manual
      lock/unlock pairs are invisible to clang's thread-safety analysis
      and leak on early returns; use MutexLock / ReaderLock / WriterLock.

  hot-path-std-function
      No `std::function` in files carrying a `// veridp-lint: hot-path`
      marker. Type-erased calls allocate and defeat inlining on the
      per-report verification path; use templates (cf. eval_with).

  bare-bddref-member
      No struct/class storing a BddRef member without arena provenance
      (a BddManager* / shared_ptr<BddManager> / HeaderSet / HeaderSpace
      member alongside it). A BddRef is an index into ONE manager's node
      pool; storing it bare invites cross-arena evaluation, the exact
      bug class VERIDP_BDD_CHECK_ARENA exists to catch at runtime.
      Files under src/bdd/ are exempt (the manager's own internals).

  xor-hash-key
      No XOR-packed hash keys: a line that both shifts by a literal >= 8
      and XORs is almost always packing fields with `(a << k) ^ b`,
      which aliases whenever fields exceed their lanes ((a^c)<<k ^ b
      collides with a<<k ^ (b^(c<<k))). Pack with `|` over disjoint
      lanes or hash-combine with multiplication by odd constants.
      src/common/murmur3.* is exempt (vendored published hash).

  relaxed-atomic
      Every `memory_order_relaxed` outside the profiler and lockdep
      internals (src/common/scal_profiler.*, src/common/lockdep.*)
      needs `veridp-lint: allow(relaxed-atomic, <justification>)` with
      a NON-EMPTY justification. Relaxed is correct for commutative
      counters and advisory flags, and subtly wrong the moment a
      reader infers anything about *other* memory from the value — the
      A/B snapshot flip bug class (DESIGN.md §12). The justification
      requirement forces the author to state which camp a site is in,
      reviewably, at the site.

Suppression: `veridp-lint: allow(<rule>)` inside a comment on the
offending line, or on a line above it within the same statement
(coverage extends until the next line that ends in `;` or `}`). The
form `allow(<rule>, <justification>)` attaches a justification; the
relaxed-atomic rule rejects allows whose justification is missing or
empty, every other rule treats it as documentation.

Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
`--expect-violation RULE` inverts the contract for the lint's own test
fixtures: exit 0 iff at least one violation was found and every
violation is of RULE.
"""

import argparse
import os
import re
import sys

RULES = ("raw-lock", "hot-path-std-function", "bare-bddref-member",
         "xor-hash-key", "relaxed-atomic")

# Rules whose allow() must carry a non-empty justification argument.
JUSTIFIED_RULES = frozenset({"relaxed-atomic"})

ALLOW_RE = re.compile(r"veridp-lint:\s*allow\(([a-z-]+)(?:\s*,\s*([^)]*))?\)")
HOT_PATH_RE = re.compile(r"//\s*veridp-lint:\s*hot-path\b")

# Per-rule file exemptions (path suffixes, '/'-normalized).
FILE_EXEMPT = {
    "raw-lock": ("src/common/thread_annotations.hpp",),
    "xor-hash-key": ("src/common/murmur3.hpp", "src/common/murmur3.cc"),
    "bare-bddref-member": (),  # src/bdd/ handled as a directory below
    # The profiler and the lockdep runtime ARE the justified-relaxed
    # internals the rule points everyone else at.
    "relaxed-atomic": ("src/common/scal_profiler.hpp",
                       "src/common/scal_profiler.cc",
                       "src/common/lockdep.hpp",
                       "src/common/lockdep.cc"),
}

RAW_LOCK_RE = re.compile(r"(?:\.|->)\s*(?:try_lock|lock|unlock)\s*\(")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b")
XOR_SHIFT_RE = re.compile(r"<<\s*(\d+)")
MEMBER_BDDREF_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|const\s+)*"
    r"BddRef\s+\w+(?:\s*[={][^;]*)?;")
STRUCT_DECL_RE = re.compile(
    r"(?<!enum\s)\b(?:struct|class)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)")
PROVENANCE_RE = re.compile(
    r"\bBddManager\b|\bHeaderSpace\b|\bHeaderSet\b|\bHeaderTransfer\b")


def strip_code(text):
    """Blanks comments and string/char literals, preserving line
    structure, so rule regexes see only code. Escapes inside literals
    are honoured; raw strings are not used in this tree."""
    out = []
    i, n = 0, len(text)
    state = None  # None | '//' | '/*' | '"' | "'"
    while i < n:
        c = text[i]
        if state is None:
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "//"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "/*"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "//":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "/*":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated; bail to keep line counts
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allow_map(raw_lines):
    """Maps 1-based line number -> {rule: justification-or-None}. An
    allow covers its own line and subsequent lines until (and
    including) the next line whose code ends a statement or block."""
    allowed = {}
    active = {}
    for ln, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            just = m.group(2)
            active[m.group(1)] = just.strip() if just else None
        if active:
            allowed[ln] = dict(active)
            code = re.sub(r"//.*", "", line).rstrip()
            if code.endswith((";", "}")):
                active = {}
    return allowed


class StructScanner:
    """Tracks `struct`/`class` bodies through brace depth so the
    bare-bddref-member rule sees member declarations only — locals in
    member-function bodies sit at a deeper depth and are skipped. A
    decl becomes "pending" at its keyword and binds to the next `{`; a
    `;` first means it was a forward declaration (or a member of
    pointer-to-struct type) and cancels it."""

    def __init__(self):
        self.depth = 0
        self.pending = None
        self.stack = []  # (name, open_depth, open_line)

    def feed(self, code_line, ln):
        closed = []  # (name, open_line, close_line)
        decls = [(m.start(), m.group(1))
                 for m in STRUCT_DECL_RE.finditer(code_line)]
        di = 0
        for i, ch in enumerate(code_line):
            while di < len(decls) and decls[di][0] <= i:
                self.pending = decls[di][1]
                di += 1
            if ch == "{":
                if self.pending is not None:
                    self.stack.append((self.pending, self.depth, ln))
                    self.pending = None
                self.depth += 1
            elif ch == "}":
                self.depth -= 1
                if self.stack and self.stack[-1][1] == self.depth:
                    name, _d, open_ln = self.stack.pop()
                    closed.append((name, open_ln, ln))
            elif ch == ";":
                self.pending = None
        if di < len(decls):
            self.pending = decls[-1][1]
        return closed

    def member_depth_ok(self):
        return bool(self.stack) and self.depth == self.stack[-1][1] + 1


def lint_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"veridp_lint: cannot read {path}: {e}", file=sys.stderr)
        return False
    raw_lines = text.splitlines()
    code_lines = strip_code(text).splitlines()
    allowed = allow_map(raw_lines)
    hot_path = any(HOT_PATH_RE.search(l) for l in raw_lines)

    def exempt(rule):
        return any(rel.endswith(sfx) for sfx in FILE_EXEMPT.get(rule, ()))

    def report(rule, ln, msg):
        scope = allowed.get(ln, {})
        if rule in scope:
            if rule not in JUSTIFIED_RULES or scope[rule]:
                return
            msg += ("; the allow is missing its justification — write "
                    f"allow({rule}, <why relaxed is enough here>)")
        findings.append((rel, ln, rule, msg))

    scanner = StructScanner()
    struct_members = []  # (struct name, member line)

    for ln, code in enumerate(code_lines, start=1):
        if not exempt("raw-lock") and RAW_LOCK_RE.search(code):
            report("raw-lock", ln,
                   "bare lock()/unlock() call; use the RAII guards in "
                   "common/thread_annotations.hpp")
        if hot_path and STD_FUNCTION_RE.search(code):
            report("hot-path-std-function", ln,
                   "std::function in a hot-path file; use a template "
                   "parameter (cf. BddManager::eval_with)")
        if not exempt("relaxed-atomic") and RELAXED_RE.search(code):
            report("relaxed-atomic", ln,
                   "memory_order_relaxed outside the profiler/lockdep "
                   "internals; justify it with allow(relaxed-atomic, "
                   "<why>) or use acquire/release")
        if not exempt("xor-hash-key") and "^" in code:
            m = XOR_SHIFT_RE.search(code)
            if m and int(m.group(1)) >= 8:
                report("xor-hash-key", ln,
                       "XOR-packed key: shifted lanes combined with ^ "
                       "alias under overflow; pack with | over disjoint "
                       "lanes or mix with odd-constant multiplies")
        # bare-bddref-member bookkeeping
        if not rel.startswith("src/bdd/"):
            if scanner.member_depth_ok() and MEMBER_BDDREF_RE.match(code):
                struct_members.append((scanner.stack[-1][0], ln))
            for name, open_ln, close_ln in scanner.feed(code, ln):
                hits = [(sname, sln) for sname, sln in struct_members
                        if sname == name]
                struct_members = [x for x in struct_members
                                  if x[0] != name]
                if not hits:
                    continue
                # Provenance = a manager-carrying member somewhere in
                # the same struct body.
                span = "\n".join(code_lines[open_ln - 1:close_ln])
                if not PROVENANCE_RE.search(span):
                    for _sname, sln in hits:
                        report("bare-bddref-member", sln,
                               f"struct {name} stores a BddRef without "
                               "arena provenance (no BddManager/"
                               "HeaderSet member); see bdd.hpp on "
                               "cross-arena refs")
        else:
            scanner.feed(code, ln)
    return True


def collect_files(root, paths):
    exts = (".hpp", ".cc", ".cpp", ".h")
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, _dirs, names in os.walk(ap):
                for name in sorted(names):
                    if name.endswith(exts):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"veridp_lint: no such path: {p}", file=sys.stderr)
            return None
    return files


def main(argv):
    ap = argparse.ArgumentParser(
        prog="veridp_lint.py",
        description="Domain lint for the VeriDP tree (see module "
                    "docstring / DESIGN.md §8 for the rule catalogue).")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src tools)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--expect-violation", metavar="RULE", choices=RULES,
                    help="fixture mode: succeed iff >=1 violation is "
                         "found and all violations are of RULE")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "tools"]
    files = collect_files(root, paths)
    if files is None:
        return 2

    findings = []
    ok = True
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        ok = lint_file(path, rel, findings) and ok
    if not ok:
        return 2

    for rel, ln, rule, msg in findings:
        print(f"{rel}:{ln}: [{rule}] {msg}")

    if args.expect_violation:
        rules_hit = {rule for _r, _l, rule, _m in findings}
        if not findings:
            print(f"veridp_lint: FIXTURE FAILURE: expected a "
                  f"{args.expect_violation} violation, found none",
                  file=sys.stderr)
            return 1
        if rules_hit != {args.expect_violation}:
            print(f"veridp_lint: FIXTURE FAILURE: expected only "
                  f"{args.expect_violation}, got {sorted(rules_hit)}",
                  file=sys.stderr)
            return 1
        print(f"veridp_lint: fixture OK: {len(findings)} "
              f"{args.expect_violation} violation(s) as expected")
        return 0

    if findings:
        print(f"veridp_lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"veridp_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
