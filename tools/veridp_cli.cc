// veridp_cli — command-line front end for the library.
//
//   veridp_cli topo <name>                     dump a topology
//   veridp_cli pathtable <name> [--rules N]    build + summarize the path table
//   veridp_cli monitor <name> --fault KIND [--seed S] [--repair]
//                                              run a fault scenario end to end
//   veridp_cli chaos <name> [--loss P] [--dup P] [--reorder P] [--corrupt P]
//                    [--rounds N] [--updates N] [--seed S] [--fault KIND]
//                                              drive reports through a lossy
//                                              channel + overload-aware ingest
//   veridp_cli parallel <name> [--workers N] [--producers P] [--rounds N]
//                      [--loss P] [--dup P] [--reorder P] [--corrupt P]
//                      [--seed S] [--fault KIND]
//                                              replay one chaos capture through
//                                              the sequential stack AND the
//                                              multi-threaded server; verdicts
//                                              must match exactly
//   veridp_cli control <name> [--ticks N] [--loss P] [--dup P] [--reorder P]
//                     [--corrupt P] [--seed S] [--wedge] [--json FILE]
//                                              drive a pressure ramp through
//                                              the closed control loop; print
//                                              the per-tick decision trace and
//                                              the regime transition summary
//   veridp_cli fuzz [--seed S | --seeds a,b,c] [--budget N]
//                   [--budget-seconds N] [--json FILE]
//                   [--corpus DIR] [--replay DIR] [--minimize FILE]
//                                              coverage-guided fault-fuzzing
//                                              campaign with a detection/
//                                              localization scorecard; or
//                                              replay a corpus / shrink one
//                                              failing schedule
//
// <name> ∈ {linear, fat4, fat6, stanford, internet2, toy}
// KIND   ∈ {drop-rule, blackhole, rewire, external, priority}
//
// The CLI exists so the system can be exercised without writing C++;
// every command prints a deterministic, diff-able report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "controller/routing.hpp"
#include "dataplane/fault.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/scorecard.hpp"
#include "topo/generators.hpp"
#include "veridp/channel.hpp"
#include "veridp/control_loop.hpp"
#include "veridp/ingest.hpp"
#include "veridp/parallel_server.hpp"
#include "veridp/repair.hpp"
#include "veridp/server.hpp"
#include "veridp/workload.hpp"

using namespace veridp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  veridp_cli topo <name>\n"
               "  veridp_cli pathtable <name> [--rules N]\n"
               "  veridp_cli monitor <name> --fault KIND [--seed S] [--repair]\n"
               "  veridp_cli chaos <name> [--loss P] [--dup P] [--reorder P]\n"
               "             [--corrupt P] [--rounds N] [--updates N]\n"
               "             [--seed S] [--fault KIND]\n"
               "  veridp_cli parallel <name> [--workers N] [--producers P]\n"
               "             [--rounds N] [--loss P] [--dup P] [--reorder P]\n"
               "             [--corrupt P] [--seed S] [--fault KIND]\n"
               "  veridp_cli control <name> [--ticks N] [--loss P] [--dup P]\n"
               "             [--reorder P] [--corrupt P] [--seed S] [--wedge]\n"
               "             [--json FILE]\n"
               "  veridp_cli fuzz [--seed S | --seeds a,b,c] [--budget N]\n"
               "             [--budget-seconds N] [--json FILE]\n"
               "             [--corpus DIR] [--replay DIR] [--minimize FILE]\n"
               "names:  linear fat4 fat6 stanford internet2 toy\n"
               "faults: drop-rule blackhole rewire external priority\n");
  return 2;
}

std::optional<Topology> make_topo(const std::string& name) {
  if (name == "linear") return linear(5);
  if (name == "fat4") return fat_tree(4);
  if (name == "fat6") return fat_tree(6);
  if (name == "stanford") return stanford_like(14, 4);
  if (name == "internet2") return internet2_like(8);
  if (name == "toy") return toy_figure5();
  return std::nullopt;
}

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

int cmd_topo(const Topology& topo) {
  std::printf("switches: %zu, links: %zu, edge ports: %zu, subnets: %zu\n",
              topo.num_switches(), topo.num_links(),
              topo.edge_ports().size(), topo.subnets().size());
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    std::printf("%-10s (%u ports)", topo.name(s).c_str(), topo.num_ports(s));
    for (PortId p = 1; p <= topo.num_ports(s); ++p) {
      const PortKey pk{s, p};
      if (auto peer = topo.peer(pk)) {
        if (*peer == pk)
          std::printf("  %u->middlebox", p);
        else
          std::printf("  %u->%s.%u", p, topo.name(peer->sw).c_str(),
                      peer->port);
      } else if (auto subnet = topo.subnet(pk)) {
        std::printf("  %u=%s", p, to_string(*subnet).c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_pathtable(Topology topo, std::size_t extra_rules) {
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  if (extra_rules > 0) {
    Rng rng(1);
    const std::size_t added = workload::add_specific_rules(c, rng, extra_rules);
    std::printf("added %zu synthetic refinement rules\n", added);
  }
  server.sync();
  const auto s = server.stats();
  std::printf("rules: %zu\n", c.num_rules());
  std::printf("path table: %zu port pairs, %zu paths, avg path length %.2f\n",
              s.num_pairs, s.num_paths, s.avg_path_length);
  return 0;
}

int cmd_monitor(Topology topo, const std::string& fault_kind,
                std::uint64_t seed, bool do_repair) {
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);
  Rng rng(seed);
  FaultInjector inject(net);

  // Pick a victim rule on a switch that has any.
  SwitchId sw = kNoSwitch;
  RuleId victim = kNoRule;
  PortId victim_out = kDropPort;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const SwitchId cand = static_cast<SwitchId>(rng.index(topo.num_switches()));
    const auto& rules = net.at(cand).config().table.rules();
    if (rules.empty()) continue;
    const FlowRule& r = rules[rng.index(rules.size())];
    sw = cand;
    victim = r.id;
    victim_out = r.action.out;
    break;
  }
  if (sw == kNoSwitch) {
    std::fprintf(stderr, "no rules installed?\n");
    return 1;
  }

  if (fault_kind == "drop-rule") {
    inject.drop_rule(sw, victim);
  } else if (fault_kind == "blackhole") {
    inject.replace_with_drop(sw, victim);
  } else if (fault_kind == "rewire") {
    PortId wrong = static_cast<PortId>(1 + rng.index(topo.num_ports(sw)));
    if (wrong == victim_out) wrong = wrong == 1 ? 2 : wrong - 1;
    inject.rewrite_rule_output(sw, victim, wrong);
  } else if (fault_kind == "external") {
    inject.insert_external_rule(
        sw, FlowRule{999999, 100000, Match::any(),
                     Action::output(static_cast<PortId>(
                         1 + rng.index(topo.num_ports(sw))))});
  } else if (fault_kind == "priority") {
    inject.ignore_priority(sw);
  } else {
    return usage();
  }
  std::printf("fault: %s\n", inject.history().back().describe().c_str());

  std::size_t failures = 0, localized = 0;
  std::optional<TagReport> first;
  for (const auto& f : workload::ping_all(topo)) {
    const auto r = net.inject(f.header, f.entry);
    for (const TagReport& rep : r.reports) {
      if (server.verify(rep).ok()) continue;
      ++failures;
      if (!first) first = rep;
      if (server.localize(rep).recovered(r.path)) ++localized;
    }
  }
  std::printf("reports verified: %llu, failed: %zu, real path recovered: %zu\n",
              static_cast<unsigned long long>(server.reports_verified()),
              failures, localized);

  if (failures == 0) {
    std::printf("fault not exercised by the ping matrix (try another --seed)\n");
    return 1;
  }
  if (do_repair && first) {
    RepairEngine repair(c, net);
    for (const RepairReport& r : repair.repair_from(*first))
      std::printf("repaired %s: +%zu rules, -%zu foreign, %zu ACLs%s\n",
                  topo.name(r.sw).c_str(), r.reinstalled, r.removed,
                  r.acls_restored,
                  r.priority_mode_fixed ? ", priority mode reset" : "");
    std::size_t after = 0;
    for (const auto& f : workload::ping_all(topo)) {
      const auto r = net.inject(f.header, f.entry);
      for (const TagReport& rep : r.reports)
        if (!server.verify(rep).ok()) ++after;
    }
    std::printf("failures after repair: %zu\n", after);
    return after == 0 ? 0 : 1;
  }
  return 0;
}

// Chaos experiment: the full resilient report path (wire v2 → lossy
// channel → overload-aware ingest → epoch-aware server) under continuous
// rule updates, optionally with a real switch fault injected halfway.
int cmd_chaos(Topology topo, const ChannelConfig& ccfg, int rounds,
              std::size_t updates_per_round, std::uint64_t seed,
              const char* fault_kind) {
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  server.enable_epoch_checking();
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);
  net.set_config_epoch(c.epoch());

  ReportChannel channel(ccfg);
  ReportIngest ingest(server);
  ingest.set_backoff_sink([&net](double factor) {
    net.scale_sampling(factor);
    return true;
  });

  Rng rng(seed);
  FaultInjector inject(net);
  bool fault_armed = fault_kind != nullptr;
  const auto flows = workload::ping_all(topo);
  for (int round = 0; round < rounds; ++round) {
    if (fault_armed && round == rounds / 2) {
      // Inject the switch fault halfway so clean and faulty reports mix.
      const SwitchId sw =
          static_cast<SwitchId>(rng.index(topo.num_switches()));
      const auto& rules = net.at(sw).config().table.rules();
      if (!rules.empty()) {
        const FlowRule& victim = rules[rng.index(rules.size())];
        const std::string kind = fault_kind;
        bool done = true;
        if (kind == "drop-rule") {
          inject.drop_rule(sw, victim.id);
        } else if (kind == "blackhole") {
          inject.replace_with_drop(sw, victim.id);
        } else if (kind == "rewire") {
          PortId wrong = static_cast<PortId>(1 + rng.index(topo.num_ports(sw)));
          if (wrong == victim.action.out) wrong = wrong == 1 ? 2 : wrong - 1;
          inject.rewrite_rule_output(sw, victim.id, wrong);
        } else if (kind == "priority") {
          inject.ignore_priority(sw);
        } else if (kind == "external") {
          inject.insert_external_rule(
              sw, FlowRule{999999, 100000, Match::any(),
                           Action::output(static_cast<PortId>(
                               1 + rng.index(topo.num_ports(sw))))});
        } else {
          return usage();
        }
        if (done) {
          std::printf("fault: %s\n",
                      inject.history().back().describe().c_str());
          fault_armed = false;
        }
      }
    }

    for (const auto& f : flows) {
      const auto r = net.inject(f.header, f.entry, /*t=*/round);
      for (const TagReport& rep : r.reports) channel.send(rep);
      while (auto d = channel.deliver()) ingest.offer(*d);
    }
    ingest.process();
    if (updates_per_round > 0) {
      // Config churn: blackhole the next few hosts at their edge switches
      // (works on every topology, including /32-subnet fat trees where
      // nested refinement rules cannot exist).
      const auto& subnets = topo.subnets();
      std::size_t changed = 0;
      for (std::size_t i = 0; i < updates_per_round; ++i) {
        const std::size_t at =
            static_cast<std::size_t>(round) * updates_per_round + i;
        if (at >= subnets.size()) break;
        const auto& [dst_port, subnet] = subnets[at];
        c.add_rule(dst_port.sw, 100000 + static_cast<std::int32_t>(at),
                   Match::dst_prefix(subnet), Action::drop());
        ++changed;
      }
      if (changed > 0) {
        c.deploy(net);
        net.set_config_epoch(c.epoch());
      }
    }
  }
  channel.flush();
  while (auto d = channel.deliver()) ingest.offer(*d);
  ingest.process();

  const ChannelStats& cs = channel.stats();
  std::printf("channel: sent %llu delivered %llu dropped %llu dup %llu "
              "reorder %llu delay %llu corrupt %llu\n",
              static_cast<unsigned long long>(cs.sent),
              static_cast<unsigned long long>(cs.delivered),
              static_cast<unsigned long long>(cs.dropped),
              static_cast<unsigned long long>(cs.duplicated),
              static_cast<unsigned long long>(cs.reordered),
              static_cast<unsigned long long>(cs.delayed),
              static_cast<unsigned long long>(cs.corrupted));
  const IngestHealth h = ingest.health();
  std::printf("ingest:  received %llu passed %llu failed %llu stale %llu "
              "shed %llu quarantined %llu deduped %llu\n",
              static_cast<unsigned long long>(h.received),
              static_cast<unsigned long long>(h.passed),
              static_cast<unsigned long long>(h.failed),
              static_cast<unsigned long long>(h.stale),
              static_cast<unsigned long long>(h.shed),
              static_cast<unsigned long long>(h.quarantined),
              static_cast<unsigned long long>(h.deduped));
  std::printf("ingest:  lost-estimate %llu backoff signals %llu acked %llu\n",
              static_cast<unsigned long long>(h.lost_estimate),
              static_cast<unsigned long long>(h.backoff_signals),
              static_cast<unsigned long long>(h.backoff_acked));
  std::printf("server:  epoch %u snapshots %zu verified %llu\n",
              server.epoch(), server.snapshots(),
              static_cast<unsigned long long>(server.reports_verified()));
  const bool balanced = h.accounted() == h.received;
  std::printf("conservation: %s\n", balanced ? "ok" : "VIOLATED");
  if (!balanced) return 1;
  // Without an injected switch fault, any failure is a false positive.
  if (fault_kind == nullptr && h.failed != 0) {
    std::printf("FALSE POSITIVES under transport faults\n");
    return 1;
  }
  return 0;
}

// Parallel-vs-sequential replay: capture ONE chaos stream, feed the
// identical datagrams to the single-threaded stack (Server+ReportIngest)
// and to the ParallelServer behind P producer threads, then diff every
// health counter. Shedding is disabled on both sides — shed decisions
// depend on queue timing, everything else must match bit for bit.
int cmd_parallel(Topology topo, const ChannelConfig& ccfg, int rounds,
                 unsigned workers, unsigned producers, std::uint64_t seed,
                 const char* fault_kind) {
  Controller c(topo);
  Server oracle(c, Server::Mode::kFullRebuild);
  oracle.enable_epoch_checking();
  ParallelConfig pcfg;
  pcfg.workers = workers;
  pcfg.queue_capacity = 1u << 16;
  pcfg.high_watermark = 1u << 16;
  pcfg.dedup_window = 1u << 16;
  pcfg.failure_keep = 1u << 16;
  ParallelServer parallel(c, pcfg);
  parallel.enable_epoch_checking();
  routing::install_shortest_paths(c);
  oracle.sync();
  parallel.sync();
  Network net(topo);
  c.deploy(net);
  net.set_config_epoch(c.epoch());

  Rng rng(seed);
  FaultInjector inject(net);
  if (fault_kind != nullptr) {
    // First-round fault: its reports carry the sync epoch, so the
    // mismatches are judged definitively against the retired ring table.
    const SwitchId sw = static_cast<SwitchId>(rng.index(topo.num_switches()));
    const auto& rules = net.at(sw).config().table.rules();
    if (!rules.empty()) {
      const FlowRule& victim = rules[rng.index(rules.size())];
      const std::string kind = fault_kind;
      if (kind == "drop-rule") {
        inject.drop_rule(sw, victim.id);
      } else if (kind == "blackhole") {
        inject.replace_with_drop(sw, victim.id);
      } else if (kind == "rewire") {
        PortId wrong = static_cast<PortId>(1 + rng.index(topo.num_ports(sw)));
        if (wrong == victim.action.out) wrong = wrong == 1 ? 2 : wrong - 1;
        inject.rewrite_rule_output(sw, victim.id, wrong);
      } else if (kind == "priority") {
        inject.ignore_priority(sw);
      } else if (kind == "external") {
        inject.insert_external_rule(
            sw, FlowRule{999999, 100000, Match::any(),
                         Action::output(static_cast<PortId>(
                             1 + rng.index(topo.num_ports(sw))))});
      } else {
        return usage();
      }
      std::printf("fault: %s\n", inject.history().back().describe().c_str());
    }
  }

  ReportChannel channel(ccfg);
  const auto flows = workload::ping_all(topo);
  const auto& subnets = topo.subnets();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& f : flows) {
      const auto r = net.inject(f.header, f.entry, /*t=*/round);
      for (const TagReport& rep : r.reports) channel.send(rep);
    }
    // Churn between rounds, while datagrams sit in the channel.
    const std::size_t at = static_cast<std::size_t>(round);
    if (at < subnets.size()) {
      const auto& [dst_port, subnet] = subnets[at];
      c.add_rule(dst_port.sw, 100000 + static_cast<std::int32_t>(at),
                 Match::dst_prefix(subnet), Action::drop());
      c.deploy(net);
      net.set_config_epoch(c.epoch());
    }
  }
  const std::vector<std::vector<std::uint8_t>> datagrams =
      channel.drain_all();
  std::printf("captured %zu datagrams\n", datagrams.size());

  // Sequential reference.
  IngestConfig icfg;
  icfg.capacity = 1u << 16;
  icfg.high_watermark = (1u << 16) - 1;
  icfg.dedup_window = 1u << 16;
  icfg.failure_keep = 1u << 16;
  ReportIngest ingest(oracle, icfg);
  for (const auto& d : datagrams) ingest.offer(d);
  ingest.process();
  const IngestHealth sh = ingest.health();

  // The same capture through P producers × N workers. The oracle Server
  // rebuilt lazily inside verify(); the parallel control plane publishes
  // explicitly before streaming.
  parallel.publish();
  parallel.start();
  std::printf("parallel: %u workers, %u producers\n", parallel.worker_count(),
              producers);
  std::vector<std::thread> pool;
  for (unsigned p = 0; p < producers; ++p)
    pool.emplace_back([&datagrams, &parallel, p, producers] {
      for (std::size_t i = p; i < datagrams.size(); i += producers)
        parallel.submit_datagram(datagrams[i]);
    });
  for (std::thread& t : pool) t.join();
  parallel.drain();
  parallel.stop();
  const ParallelHealth ph = parallel.health();

  std::printf("%-12s %10s %10s\n", "", "sequential", "parallel");
  bool match = true;
  const auto row = [&match](const char* name, std::uint64_t seq,
                            std::uint64_t par) {
    const bool ok = seq == par;
    match = match && ok;
    std::printf("%-12s %10llu %10llu%s\n", name,
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(par), ok ? "" : "  <-- DIFF");
  };
  row("received", sh.received, ph.received);
  row("passed", sh.passed, ph.passed);
  row("failed", sh.failed, ph.failed);
  row("stale", sh.stale, ph.stale);
  row("deduped", sh.deduped, ph.deduped);
  row("quarantined", sh.quarantined, ph.quarantined);
  row("lost-est", sh.lost_estimate, ph.lost_estimate);
  row("shed", sh.shed, ph.shed);
  const bool conserved = ph.accounted() == ph.received;
  std::printf("conservation: %s\n", conserved ? "ok" : "VIOLATED");
  std::printf("oracle match: %s\n", match ? "ok" : "MISMATCH");
  return (match && conserved) ? 0 : 1;
}

// Pressure-ramp scenario for the closed control loop: nominal warm-up,
// a flood plateau (many injection copies per tick against a starved
// drain budget, optionally with the snapshot publisher wedged for a
// window), then cooldown to idle. Every tick prints the controller's
// decision; the exit status asserts the operational invariants the
// chaos harness checks in-process (conservation, zero false positives,
// regime returns to normal, failsafe edge-triggered once per wedge).
int cmd_control(Topology topo, const ChannelConfig& ccfg, int ticks,
                std::uint64_t seed, bool wedge_window,
                const char* json_path) {
  Controller c(topo);
  Server server(c, Server::Mode::kFullRebuild);
  server.enable_epoch_checking();
  routing::install_shortest_paths(c);
  server.sync();
  Network net(topo);
  c.deploy(net);
  net.set_config_epoch(c.epoch());

  bool wedged = false;
  server.set_publish_fault([&wedged] { return wedged; });

  ReportChannel channel(ccfg);
  IngestConfig icfg;
  icfg.capacity = 256;
  icfg.high_watermark = 128;
  ReportIngest ingest(server, icfg);
  IngestGovernor governor(ingest);
  governor.set_sampling_sink(
      [&net](double factor) { net.command_sampling(factor); });

  // Ramp profile over `ticks`: quarter nominal, half flood, quarter
  // cooldown. The wedge window covers the middle of the flood.
  const int t_flood = ticks / 4;
  const int t_cool = ticks - ticks / 4;
  const int t_wedge_on = t_flood + (t_cool - t_flood) / 4;
  const int t_wedge_off = t_flood + 3 * (t_cool - t_flood) / 4;

  const auto flows = workload::ping_all(topo);
  const auto& subnets = topo.subnets();
  std::size_t churned = 0;
  double max_factor = 1.0;
  bool conserved = true;

  std::printf("%5s %9s %7s %8s %8s %7s %6s %6s %s\n", "tick", "pressure",
              "regime", "factor", "modulus", "queue", "shed", "flip",
              "failsafe");
  for (int t = 0; t < ticks; ++t) {
    const bool flood = t >= t_flood && t < t_cool;
    if (wedge_window) {
      if (t == t_wedge_on) wedged = true;
      if (t == t_wedge_off) wedged = false;
    }
    if (flood && t % 3 == 0 && !subnets.empty()) {
      // Config churn mid-flood: controller-deployed blackholes, so a
      // consistent plane — any verification failure is a false positive.
      const auto& [dst_port, subnet] = subnets[churned % subnets.size()];
      c.add_rule(dst_port.sw, 100000 + static_cast<std::int32_t>(churned),
                 Match::dst_prefix(subnet), Action::drop());
      ++churned;
      c.deploy(net);
      net.set_config_epoch(c.epoch());
    }
    const int copies = flood ? 6 : (t < t_flood ? 1 : 0);
    for (int k = 0; k < copies; ++k)
      for (const auto& f : flows) {
        const auto r = net.inject(f.header, f.entry, t + 0.001 * k);
        for (const TagReport& rep : r.reports) channel.send(rep);
      }
    while (auto d = channel.deliver()) {
      ingest.offer(*d);
      conserved = conserved && ingest.health().conserved();
    }
    ingest.process(flood ? 24 : SIZE_MAX);
    const ControlDecision dec = governor.tick(server.in_failsafe());
    conserved = conserved && ingest.health().conserved();
    max_factor = std::max(max_factor, dec.sampling_factor);
    std::printf("%5llu %9.3f %7s %8.2f %8u %7llu %6llu %6s %s\n",
                static_cast<unsigned long long>(dec.tick), dec.pressure,
                to_string(dec.regime), dec.sampling_factor, dec.shed_modulus,
                static_cast<unsigned long long>(ingest.health().in_queue),
                static_cast<unsigned long long>(ingest.health().shed),
                dec.regime_changed ? "<--" : "", dec.failsafe ? "WEDGED" : "");
  }
  channel.flush();
  while (auto d = channel.deliver()) ingest.offer(*d);
  ingest.process();
  governor.tick(server.in_failsafe());

  const IngestHealth h = ingest.health();
  const ChannelStats& cs = channel.stats();
  const ControlLoop& loop = governor.loop();
  std::printf("channel: sent %llu delivered %llu dropped %llu corrupt %llu\n",
              static_cast<unsigned long long>(cs.sent),
              static_cast<unsigned long long>(cs.delivered),
              static_cast<unsigned long long>(cs.dropped),
              static_cast<unsigned long long>(cs.corrupted));
  std::printf("ingest:  received %llu passed %llu failed %llu stale %llu "
              "shed %llu quarantined %llu deduped %llu\n",
              static_cast<unsigned long long>(h.received),
              static_cast<unsigned long long>(h.passed),
              static_cast<unsigned long long>(h.failed),
              static_cast<unsigned long long>(h.stale),
              static_cast<unsigned long long>(h.shed),
              static_cast<unsigned long long>(h.quarantined),
              static_cast<unsigned long long>(h.deduped));
  std::printf("control: ticks %llu transitions %llu max factor %.2f "
              "final regime %s\n",
              static_cast<unsigned long long>(loop.ticks()),
              static_cast<unsigned long long>(loop.transitions()), max_factor,
              to_string(loop.regime()));
  std::printf("failsafe: events %llu active %s\n",
              static_cast<unsigned long long>(server.failsafe_events()),
              server.in_failsafe() ? "yes" : "no");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out, "{\n  \"seed\": %llu,\n  \"trace\": [\n",
                 static_cast<unsigned long long>(seed));
    const auto& trace = loop.trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const ControlDecision& d = trace[i];
      std::fprintf(out,
                   "    {\"tick\": %llu, \"pressure\": %.6f, "
                   "\"sampling_factor\": %.6f, \"shed_modulus\": %u, "
                   "\"regime\": \"%s\", \"regime_changed\": %s, "
                   "\"failsafe\": %s}%s\n",
                   static_cast<unsigned long long>(d.tick), d.pressure,
                   d.sampling_factor, d.shed_modulus, to_string(d.regime),
                   d.regime_changed ? "true" : "false",
                   d.failsafe ? "true" : "false",
                   i + 1 < trace.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"transitions\": %llu,\n  \"failsafe_events\": "
                 "%llu,\n  \"conserved\": %s\n}\n",
                 static_cast<unsigned long long>(loop.transitions()),
                 static_cast<unsigned long long>(server.failsafe_events()),
                 conserved && h.conserved() ? "true" : "false");
    std::fclose(out);
    std::printf("trace written to %s\n", json_path);
  }

  conserved = conserved && h.conserved() && h.in_queue == 0;
  const bool no_false_positives = h.failed == 0;
  const bool settled = loop.regime() == AdmissionRegime::kNormal;
  const bool failsafe_ok =
      !wedge_window ||
      (server.failsafe_events() == 1 && !server.in_failsafe());
  std::printf("conservation: %s\n", conserved ? "ok" : "VIOLATED");
  if (!no_false_positives) std::printf("FALSE POSITIVES under ramp\n");
  if (!settled) std::printf("regime did not settle back to normal\n");
  if (!failsafe_ok) std::printf("failsafe invariant violated\n");
  return (conserved && no_false_positives && settled && failsafe_ok) ? 0 : 1;
}

// Fuzzing campaigns (DESIGN.md §10). Three modes:
//   --replay DIR     re-run every corpus entry, diff trace digests
//                    (exit 2 on any divergence)
//   --minimize FILE  ddmin a failing schedule / corpus entry to its
//                    minimal reproducer
//   (default)        coverage-guided campaign across --seeds × --budget;
//                    --json writes the scorecard, --corpus persists
//                    coverage-advancing schedules (exit 1 unless the
//                    scorecard is clean: zero false positives, zero
//                    conservation violations, zero parallel mismatches)
int cmd_fuzz(int argc, char** argv) {
  const fuzz::CampaignRunner runner;

  if (const char* dir = flag_value(argc, argv, "--replay")) {
    const auto paths = fuzz::list_corpus(dir);
    if (paths.empty()) {
      std::fprintf(stderr, "no corpus entries under %s\n", dir);
      return 2;
    }
    std::size_t diverged = 0;
    for (const std::string& path : paths) {
      const auto entry = fuzz::load_entry(path);
      if (!entry) {
        std::printf("replay %s: MALFORMED\n", path.c_str());
        ++diverged;
        continue;
      }
      const fuzz::RunResult r = runner.run(entry->schedule);
      if (r.digest == entry->digest) {
        std::printf("replay %s: ok (digest %llu)\n", entry->name.c_str(),
                    static_cast<unsigned long long>(r.digest));
      } else {
        std::printf("replay %s: DIVERGED (expected %llu got %llu)\n",
                    entry->name.c_str(),
                    static_cast<unsigned long long>(entry->digest),
                    static_cast<unsigned long long>(r.digest));
        ++diverged;
      }
    }
    std::printf("replayed %zu entries, divergences %zu\n", paths.size(),
                diverged);
    return diverged == 0 ? 0 : 2;
  }

  if (const char* file = flag_value(argc, argv, "--minimize")) {
    // Accept either a corpus entry or a bare schedule file.
    std::optional<fuzz::FuzzSchedule> schedule;
    if (const auto entry = fuzz::load_entry(file)) {
      schedule = entry->schedule;
    } else if (std::FILE* in = std::fopen(file, "rb")) {
      std::string text;
      char buf[4096];
      for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, in)) > 0;)
        text.append(buf, n);
      std::fclose(in);
      schedule = fuzz::parse_schedule(text);
    }
    if (!schedule) {
      std::fprintf(stderr, "cannot parse %s\n", file);
      return 2;
    }
    fuzz::MinimizeStats stats;
    const fuzz::FuzzSchedule shrunk = fuzz::minimize(
        runner, *schedule, fuzz::detects_inconsistency(), &stats);
    if (stats.evaluations == 1 && !runner.run(shrunk).detected) {
      std::fprintf(stderr,
                   "schedule does not detect an inconsistency; "
                   "nothing to minimize\n");
      return 1;
    }
    std::printf("minimized %zu actions -> %zu (%d evaluations, %d kept)\n",
                schedule->actions.size(), shrunk.actions.size(),
                stats.evaluations, stats.committed);
    std::printf("%s", fuzz::serialize(shrunk).c_str());
    return 0;
  }

  fuzz::CampaignOptions opts;
  if (const char* seed = flag_value(argc, argv, "--seed"))
    opts.seeds = {static_cast<std::uint64_t>(std::atoll(seed))};
  if (const char* seeds = flag_value(argc, argv, "--seeds")) {
    opts.seeds.clear();
    std::string tok;
    for (const char* p = seeds;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!tok.empty())
          opts.seeds.push_back(
              static_cast<std::uint64_t>(std::atoll(tok.c_str())));
        tok.clear();
        if (*p == '\0') break;
      } else {
        tok += *p;
      }
    }
    if (opts.seeds.empty()) return usage();
  }
  if (const char* budget = flag_value(argc, argv, "--budget"))
    opts.budget_per_seed = std::atoi(budget);
  if (opts.budget_per_seed <= 0) return usage();
  if (const char* secs = flag_value(argc, argv, "--budget-seconds")) {
    const long long v = std::atoll(secs);
    if (v <= 0) return usage();
    opts.budget_seconds = static_cast<std::uint64_t>(v);
  }

  const fuzz::CampaignOutcome outcome = fuzz::run_campaign(opts);
  const fuzz::Scorecard& card = outcome.card;
  for (const fuzz::RunResult& r : outcome.runs)
    std::printf("run seed=%llu topo=%s actions=%zu effectful=%d "
                "detected=%d localized=%d fp=%llu\n",
                static_cast<unsigned long long>(r.schedule.seed),
                r.schedule.topo.c_str(), r.schedule.actions.size(),
                r.harmful_effectful, r.detected ? 1 : 0, r.localized ? 1 : 0,
                static_cast<unsigned long long>(r.false_positives));
  if (opts.budget_seconds > 0)
    std::printf("campaign: %zu seeds, %llu s wall budget = %u total\n",
                opts.seeds.size(),
                static_cast<unsigned long long>(opts.budget_seconds),
                card.runs);
  else
    std::printf("campaign: %zu seeds x %d runs = %u total\n",
                opts.seeds.size(), opts.budget_per_seed, card.runs);
  std::printf("harmful %u detected %u localized %u\n", card.harmful_runs,
              card.detected_runs, card.localized_runs);
  std::printf("false positives %llu conservation violations %u "
              "parallel mismatches %u\n",
              static_cast<unsigned long long>(card.false_positives),
              card.conservation_violations, card.parallel_mismatches);
  std::printf("coverage keys %zu corpus new %u\n", card.coverage_keys,
              card.corpus_new);

  if (const char* dir = flag_value(argc, argv, "--corpus")) {
    std::size_t saved = 0;
    for (const fuzz::CorpusEntry& e : outcome.interesting)
      if (fuzz::save_entry(dir, e)) ++saved;
    std::printf("corpus: saved %zu entries to %s\n", saved, dir);
  }
  if (const char* path = flag_value(argc, argv, "--json")) {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    const std::string json = fuzz::to_json(card);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("scorecard written to %s\n", path);
  }
  std::printf("scorecard: %s\n", card.clean() ? "clean" : "VIOLATED");
  return card.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0)
    return cmd_fuzz(argc, argv);
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  auto topo = make_topo(argv[2]);
  if (!topo) return usage();

  if (cmd == "topo") return cmd_topo(*topo);
  if (cmd == "pathtable") {
    const char* n = flag_value(argc, argv, "--rules");
    return cmd_pathtable(std::move(*topo),
                         n ? static_cast<std::size_t>(std::atoll(n)) : 0);
  }
  if (cmd == "monitor") {
    const char* kind = flag_value(argc, argv, "--fault");
    if (!kind) return usage();
    const char* seed = flag_value(argc, argv, "--seed");
    return cmd_monitor(std::move(*topo), kind,
                       seed ? static_cast<std::uint64_t>(std::atoll(seed)) : 7,
                       has_flag(argc, argv, "--repair"));
  }
  if (cmd == "chaos") {
    ChannelConfig ccfg;
    auto rate = [&](const char* flag, double* out) {
      if (const char* v = flag_value(argc, argv, flag)) *out = std::atof(v);
    };
    rate("--loss", &ccfg.drop_rate);
    rate("--dup", &ccfg.dup_rate);
    rate("--reorder", &ccfg.reorder_rate);
    rate("--corrupt", &ccfg.corrupt_rate);
    const char* seed = flag_value(argc, argv, "--seed");
    const std::uint64_t s =
        seed ? static_cast<std::uint64_t>(std::atoll(seed)) : 7;
    ccfg.seed = s;
    const char* rounds = flag_value(argc, argv, "--rounds");
    const char* updates = flag_value(argc, argv, "--updates");
    return cmd_chaos(std::move(*topo), ccfg,
                     rounds ? std::atoi(rounds) : 4,
                     updates ? static_cast<std::size_t>(std::atoll(updates)) : 3,
                     s, flag_value(argc, argv, "--fault"));
  }
  if (cmd == "parallel") {
    ChannelConfig ccfg;
    auto rate = [&](const char* flag, double* out) {
      if (const char* v = flag_value(argc, argv, flag)) *out = std::atof(v);
    };
    rate("--loss", &ccfg.drop_rate);
    rate("--dup", &ccfg.dup_rate);
    rate("--reorder", &ccfg.reorder_rate);
    rate("--corrupt", &ccfg.corrupt_rate);
    const char* seed = flag_value(argc, argv, "--seed");
    const std::uint64_t s =
        seed ? static_cast<std::uint64_t>(std::atoll(seed)) : 7;
    ccfg.seed = s;
    const char* rounds = flag_value(argc, argv, "--rounds");
    const char* workers = flag_value(argc, argv, "--workers");
    const char* producers = flag_value(argc, argv, "--producers");
    return cmd_parallel(
        std::move(*topo), ccfg, rounds ? std::atoi(rounds) : 3,
        workers ? static_cast<unsigned>(std::atoi(workers)) : 4,
        producers ? static_cast<unsigned>(std::atoi(producers)) : 4, s,
        flag_value(argc, argv, "--fault"));
  }
  if (cmd == "control") {
    ChannelConfig ccfg;
    auto rate = [&](const char* flag, double* out) {
      if (const char* v = flag_value(argc, argv, flag)) *out = std::atof(v);
    };
    rate("--loss", &ccfg.drop_rate);
    rate("--dup", &ccfg.dup_rate);
    rate("--reorder", &ccfg.reorder_rate);
    rate("--corrupt", &ccfg.corrupt_rate);
    const char* seed = flag_value(argc, argv, "--seed");
    const std::uint64_t s =
        seed ? static_cast<std::uint64_t>(std::atoll(seed)) : 7;
    ccfg.seed = s;
    const char* ticks = flag_value(argc, argv, "--ticks");
    return cmd_control(std::move(*topo), ccfg,
                       ticks ? std::atoi(ticks) : 24, s,
                       has_flag(argc, argv, "--wedge"),
                       flag_value(argc, argv, "--json"));
  }
  return usage();
}
