#!/usr/bin/env python3
"""lock_order_extract: declared-vs-observed lock-order gate (DESIGN.md §12).

The runtime half of lockdep (src/common/lockdep.cc, VERIDP_LOCKDEP)
watches what actually happens: each process dumps the lock-class order
edges it observed as lockdep.<pid>.json. This script owns the other
half — what the source *declares* — and the comparison between them.

Declared hierarchy, parsed from src/:

  1. Every named lock declaration interns a class:
         mutable Mutex mu{"ParallelServer::Lane::mu"};
         mutable SharedMutex count_mu_{"BddManager::count_mu"};
  2. Attribute form, for ordered members of the same class (the same
     annotation clang's -Wthread-safety-beta checks):
         Mutex a_ ACQUIRED_BEFORE(b_){"Owner::a"};
     The argument is a member name, resolved to its class through the
     named declaration in the same file.
  3. Comment form, for cross-class edges clang's attribute scoping
     cannot express (the argument is another class's registered name):
         // ACQUIRED_BEFORE("BoundedMpmcQueue::mu")
         mutable Mutex mu{"ParallelServer::Lane::mu"};
     The comment binds to the next named-lock declaration below it.
     ACQUIRED_AFTER forms reverse the edge direction in both shapes.

Checks:

  --check-dag     the declared edges form a DAG (a cyclic "hierarchy"
                  is self-contradictory) and every edge endpoint names
                  a lock class that is actually declared somewhere in
                  src/ (catches renames going stale).
  --diff PATH     PATH is one observed-dump JSON or a directory of
                  lockdep.*.json dumps; merge them, then demand every
                  observed edge is contained in the transitive closure
                  of the declared DAG. An observed edge that inverts a
                  declared path is an inversion; one the declaration
                  never covered is undeclared. Either fails (exit 1) —
                  the declarations are a contract, not a suggestion.
                  Classes whose name starts with an --ignore-prefix
                  (default "test.") are dropped first: tests register
                  scratch classes to provoke the checker on purpose.

Exit codes: 0 clean, 1 violations, 2 usage/IO/parse error.
"""

import argparse
import glob
import json
import os
import re
import sys

# A named lock declaration: optional qualifiers, the wrapper type, the
# member name, any ACQUIRED_* attributes, then the brace-init class
# name (possibly wrapped onto the next line).
DECL_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*)"
    r"\{\s*\"([^\"]+)\"\s*\}", re.S)
ATTR_RE = re.compile(r"ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")
COMMENT_RE = re.compile(
    r"//\s*ACQUIRED_(BEFORE|AFTER)\s*\(\s*\"([^\"]+)\"\s*\)")


def parse_file(path, rel, classes, edges, errors):
    """Adds this file's declared classes and order edges."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{rel}: cannot read: {e}")
        return

    decls = list(DECL_RE.finditer(text))
    member_to_class = {m.group(1): m.group(3) for m in decls}
    for m in decls:
        classes.setdefault(m.group(3), f"{rel}")

    # Attribute form: arguments are member names of the same class.
    for m in decls:
        cls = m.group(3)
        for am in ATTR_RE.finditer(m.group(2)):
            for arg in am.group(2).split(","):
                arg = arg.strip()
                if not arg:
                    continue
                other = member_to_class.get(arg)
                if other is None:
                    errors.append(
                        f"{rel}: ACQUIRED_{am.group(1)}({arg}) on "
                        f"\"{cls}\" names a member with no named-lock "
                        "declaration in this file")
                    continue
                edge = (cls, other) if am.group(1) == "BEFORE" \
                    else (other, cls)
                edges.setdefault(edge, f"{rel} (attribute)")

    # Comment form: binds to the next declaration below it.
    for cm in COMMENT_RE.finditer(text):
        nxt = next((d for d in decls if d.start() > cm.start()), None)
        if nxt is None:
            errors.append(
                f"{rel}: // ACQUIRED_{cm.group(1)}(\"{cm.group(2)}\") "
                "has no named-lock declaration below it")
            continue
        cls = nxt.group(3)
        edge = (cls, cm.group(2)) if cm.group(1) == "BEFORE" \
            else (cm.group(2), cls)
        edges.setdefault(edge, f"{rel} (comment)")


def parse_tree(root):
    classes, edges, errors = {}, {}, []
    src = os.path.join(root, "src")
    for dirpath, _dirs, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".hpp", ".cc", ".h", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            parse_file(path, rel, classes, edges, errors)
    return classes, edges, errors


def transitive_closure(edges):
    """Maps class -> set of classes declared to be acquired after it."""
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    closure = {}
    for start in adj:
        seen, stack = set(), [start]
        while stack:
            for nxt in adj.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        closure[start] = seen
    return closure


def find_cycle(edges):
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    path = []

    def visit(n):
        color[n] = GREY
        path.append(n)
        for nxt in sorted(adj.get(n, ())):
            if color.get(nxt, WHITE) == GREY:
                return path[path.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cyc = visit(nxt)
                if cyc:
                    return cyc
        path.pop()
        color[n] = BLACK
        return None

    for n in sorted(adj):
        if color[n] == WHITE:
            cyc = visit(n)
            if cyc:
                return cyc
    return None


def load_observed(path, ignore_prefixes):
    """Merges one dump file or a directory of lockdep.*.json dumps into
    {(src, dst): edge-dict-with-summed-count}."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "lockdep.*.json")))
        if not files:
            print(f"lock_order_extract: no lockdep.*.json dumps in "
                  f"{path} (nothing observed is vacuously consistent)")
    elif os.path.isfile(path):
        files = [path]
    else:
        raise OSError(f"no such file or directory: {path}")

    merged = {}
    for fp in files:
        with open(fp, encoding="utf-8") as f:
            doc = json.load(f)
        for e in doc.get("edges", []):
            src, dst = e["src"], e["dst"]
            if any(src.startswith(p) or dst.startswith(p)
                   for p in ignore_prefixes):
                continue
            cur = merged.setdefault((src, dst), dict(e, count=0))
            cur["count"] += int(e.get("count", 1))
            cur["blocking"] = cur.get("blocking") or e.get("blocking")
    return merged


def main(argv):
    ap = argparse.ArgumentParser(
        prog="lock_order_extract.py",
        description="Declared-vs-observed lock-order gate (module "
                    "docstring / DESIGN.md §12).")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--check-dag", action="store_true",
                    help="validate the declared hierarchy only")
    ap.add_argument("--diff", metavar="PATH",
                    help="observed dump file, or directory of "
                         "lockdep.*.json dumps, to diff against the "
                         "declared hierarchy")
    ap.add_argument("--ignore-prefix", action="append", default=None,
                    metavar="PFX",
                    help="drop observed classes with this name prefix "
                         "(repeatable; default: test.)")
    ap.add_argument("--dump-declared", action="store_true",
                    help="print the declared classes and edges")
    args = ap.parse_args(argv)
    if not args.check_dag and not args.diff and not args.dump_declared:
        ap.error("nothing to do: pass --check-dag, --diff, or "
                 "--dump-declared")

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    classes, edges, errors = parse_tree(root)

    # Endpoint validation runs always: an edge naming a class nobody
    # declares is a stale annotation whatever mode we are in.
    for (a, b), where in sorted(edges.items()):
        for cls in (a, b):
            if cls not in classes:
                errors.append(
                    f"{where}: declared edge \"{a}\" -> \"{b}\" names "
                    f"\"{cls}\", which no named-lock declaration in "
                    "src/ registers")
    if errors:
        for e in errors:
            print(f"lock_order_extract: error: {e}", file=sys.stderr)
        return 2

    cyc = find_cycle(edges)
    if cyc:
        print("lock_order_extract: declared hierarchy is cyclic: "
              + " -> ".join(f'"{c}"' for c in cyc), file=sys.stderr)
        return 1

    if args.dump_declared or args.check_dag:
        print(f"declared lock classes ({len(classes)}):")
        for cls, where in sorted(classes.items()):
            print(f"  \"{cls}\"  [{where}]")
        print(f"declared order edges ({len(edges)}):")
        for (a, b), where in sorted(edges.items()):
            print(f"  \"{a}\" -> \"{b}\"  [{where}]")
        if args.check_dag and not args.diff:
            print("lock_order_extract: declared hierarchy OK (acyclic, "
                  "all endpoints declared)")
            return 0

    if args.diff:
        prefixes = args.ignore_prefix or ["test."]
        try:
            observed = load_observed(args.diff, prefixes)
        except (OSError, json.JSONDecodeError, KeyError) as e:
            print(f"lock_order_extract: cannot load observed dumps: "
                  f"{e}", file=sys.stderr)
            return 2
        closure = transitive_closure(edges)
        bad = []
        for (src, dst), e in sorted(observed.items()):
            if src == dst:
                bad.append((src, dst, e, "self-edge (recursive "
                            "acquisition of one class)"))
            elif dst in closure.get(src, ()):
                continue
            elif src in closure.get(dst, ()):
                bad.append((src, dst, e,
                            f"INVERTS the declared order \"{dst}\" -> "
                            f"\"{src}\""))
            else:
                bad.append((src, dst, e, "undeclared: no declared "
                            "path covers this nesting"))
        for src, dst, e, why in bad:
            kind = "blocking" if e.get("blocking") else "try-only"
            print(f"lock_order_extract: observed edge \"{src}\" -> "
                  f"\"{dst}\" (count {e['count']}, {kind}): {why}")
        if bad:
            print(f"lock_order_extract: {len(bad)} observed edge(s) "
                  "violate the declared hierarchy — either fix the "
                  "nesting or extend the ACQUIRED_BEFORE declarations",
                  file=sys.stderr)
            return 1
        print(f"lock_order_extract: observed graph consistent with the "
              f"declared hierarchy ({len(observed)} edge(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
