#!/usr/bin/env bash
# format_check.sh — verify that the lines touched by a change are
# formatted per .clang-format, without demanding a whole-tree reformat.
#
#   tools/format_check.sh [<base-ref>]
#
# Checks the diff between <base-ref> (default: origin/main if it
# exists, else HEAD~1, else the empty tree) and the working tree,
# restricted to C++ sources. Exits 0 when every touched line is clean,
# 1 when reformatting is needed (the offending diff is printed), and 0
# with a notice when clang-format / git-clang-format is unavailable —
# the container this repo builds in ships no clang; CI's static job
# provides it.
set -u

cd "$(dirname "$0")/.." || exit 2

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found; skipping (the CI static" \
       "job runs this with clang installed)"
  exit 0
fi

base="${1:-}"
if [ -z "$base" ]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    base=origin/main
  elif git rev-parse --verify -q HEAD~1 >/dev/null; then
    base=HEAD~1
  else
    base=$(git hash-object -t tree /dev/null)
  fi
fi

# git-clang-format (ships with clang) checks exactly the touched lines.
if command -v git-clang-format >/dev/null 2>&1; then
  out=$(git clang-format --diff "$base" -- src tools tests bench examples \
        2>&1)
  status=$?
  if [ $status -ne 0 ] && [ -z "$out" ]; then
    echo "format_check: git-clang-format failed"
    exit 2
  fi
  case "$out" in
    ""|*"no modified files to format"*|*"did not modify any files"*)
      echo "format_check: OK (touched lines match .clang-format)"
      exit 0
      ;;
    *)
      echo "format_check: touched lines need reformatting:"
      printf '%s\n' "$out"
      echo "fix with: git clang-format $base"
      exit 1
      ;;
  esac
fi

# Fallback without git-clang-format: per-file whole-file check limited
# to files the diff touches (coarser, same spirit).
rc=0
for f in $(git diff --name-only "$base" -- '*.cc' '*.cpp' '*.hpp' '*.h'); do
  [ -f "$f" ] || continue
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "format_check: $f deviates from .clang-format"
    rc=1
  fi
done
[ $rc -eq 0 ] && echo "format_check: OK"
exit $rc
