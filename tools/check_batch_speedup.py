#!/usr/bin/env python3
"""CI gate over BENCH_batch_kernels.json: fail when the batched
verification pipeline stops beating the memoized scalar path.

The gating metric is `verify_memo_miss.speedup` — single-thread
verify_epoch_aware_batch over a unique (every-probe-misses) stream,
divided by the memoized scalar verify_epoch_aware rate on the same
stream. It is a ratio measured on one host in one process, so it is
meaningful on slow shared CI runners where absolute reports/s are not;
only the ratio is gated by default. The absolute-rate floor from the
acceptance criteria (>= 5M reports/s) is opt-in via --min-rate because
it only holds on a full (non-quick) run on dedicated hardware.

Usage:
  check_batch_speedup.py BENCH_batch_kernels.json
  check_batch_speedup.py out.json --min-ratio 1.5
  check_batch_speedup.py out.json --min-ratio 1.5 --min-rate 5e6
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path")
    ap.add_argument("--min-ratio", type=float, default=1.5,
                    help="required batched/scalar speedup on the "
                         "memo-miss verify metric (default: 1.5)")
    ap.add_argument("--min-rate", type=float, default=0.0,
                    help="optional absolute floor on batched reports/s "
                         "(default: 0 = not gated; the acceptance run "
                         "uses 5e6)")
    args = ap.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)

    gate = doc.get("verify_memo_miss")
    if not gate:
        print("FAIL: no verify_memo_miss section in the JSON")
        return 1

    ratio = float(gate["speedup"])
    rate = float(gate["batch_reports_per_s"])
    quick = bool(doc.get("quick", False))
    print(f"{gate.get('setup', '?')} memo-miss"
          f"{' (quick run)' if quick else ''}: "
          f"scalar {float(gate['scalar_reports_per_s']):.0f}/s, "
          f"batched({gate.get('batch_size', '?')}) {rate:.0f}/s "
          f"= {ratio:.2f}x, floor {args.min_ratio:.2f}x")
    for k in doc.get("kernels", []):
        print(f"  kernel {k['name']}: {float(k['speedup']):.2f}x")

    ok = True
    if ratio < args.min_ratio:
        print("FAIL: the batched pipeline no longer beats the scalar "
              "path — see the per-kernel speedups above for which "
              "kernel regressed")
        ok = False
    if args.min_rate > 0 and rate < args.min_rate:
        print(f"FAIL: batched rate {rate:.0f}/s below the "
              f"{args.min_rate:.0f}/s floor")
        ok = False
    if ok:
        print("OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
