# Empty dependencies file for veridp_dataplane.
# This may be replaced when dependencies are built.
