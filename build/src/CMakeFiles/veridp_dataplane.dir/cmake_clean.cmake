file(REMOVE_RECURSE
  "CMakeFiles/veridp_dataplane.dir/dataplane/fault.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/fault.cc.o.d"
  "CMakeFiles/veridp_dataplane.dir/dataplane/network.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/network.cc.o.d"
  "CMakeFiles/veridp_dataplane.dir/dataplane/pipeline.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/pipeline.cc.o.d"
  "CMakeFiles/veridp_dataplane.dir/dataplane/sampler.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/sampler.cc.o.d"
  "CMakeFiles/veridp_dataplane.dir/dataplane/switch.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/switch.cc.o.d"
  "CMakeFiles/veridp_dataplane.dir/dataplane/wire.cc.o"
  "CMakeFiles/veridp_dataplane.dir/dataplane/wire.cc.o.d"
  "libveridp_dataplane.a"
  "libveridp_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
