
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/fault.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/fault.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/fault.cc.o.d"
  "/root/repo/src/dataplane/network.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/network.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/network.cc.o.d"
  "/root/repo/src/dataplane/pipeline.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/pipeline.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/pipeline.cc.o.d"
  "/root/repo/src/dataplane/sampler.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/sampler.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/sampler.cc.o.d"
  "/root/repo/src/dataplane/switch.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/switch.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/switch.cc.o.d"
  "/root/repo/src/dataplane/wire.cc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/wire.cc.o" "gcc" "src/CMakeFiles/veridp_dataplane.dir/dataplane/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veridp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_header.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
