file(REMOVE_RECURSE
  "libveridp_dataplane.a"
)
