# Empty dependencies file for veridp_bdd.
# This may be replaced when dependencies are built.
