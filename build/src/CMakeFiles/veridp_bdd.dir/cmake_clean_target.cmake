file(REMOVE_RECURSE
  "libveridp_bdd.a"
)
