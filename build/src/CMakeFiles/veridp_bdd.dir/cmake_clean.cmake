file(REMOVE_RECURSE
  "CMakeFiles/veridp_bdd.dir/bdd/bdd.cc.o"
  "CMakeFiles/veridp_bdd.dir/bdd/bdd.cc.o.d"
  "libveridp_bdd.a"
  "libveridp_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
