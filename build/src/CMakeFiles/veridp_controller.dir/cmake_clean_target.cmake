file(REMOVE_RECURSE
  "libveridp_controller.a"
)
