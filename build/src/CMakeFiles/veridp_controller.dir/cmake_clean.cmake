file(REMOVE_RECURSE
  "CMakeFiles/veridp_controller.dir/controller/controller.cc.o"
  "CMakeFiles/veridp_controller.dir/controller/controller.cc.o.d"
  "CMakeFiles/veridp_controller.dir/controller/policy.cc.o"
  "CMakeFiles/veridp_controller.dir/controller/policy.cc.o.d"
  "CMakeFiles/veridp_controller.dir/controller/routing.cc.o"
  "CMakeFiles/veridp_controller.dir/controller/routing.cc.o.d"
  "libveridp_controller.a"
  "libveridp_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
