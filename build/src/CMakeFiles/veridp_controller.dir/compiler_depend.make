# Empty compiler generated dependencies file for veridp_controller.
# This may be replaced when dependencies are built.
