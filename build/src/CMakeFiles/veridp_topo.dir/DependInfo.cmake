
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/backbone.cc" "src/CMakeFiles/veridp_topo.dir/topo/backbone.cc.o" "gcc" "src/CMakeFiles/veridp_topo.dir/topo/backbone.cc.o.d"
  "/root/repo/src/topo/fat_tree.cc" "src/CMakeFiles/veridp_topo.dir/topo/fat_tree.cc.o" "gcc" "src/CMakeFiles/veridp_topo.dir/topo/fat_tree.cc.o.d"
  "/root/repo/src/topo/simple_topos.cc" "src/CMakeFiles/veridp_topo.dir/topo/simple_topos.cc.o" "gcc" "src/CMakeFiles/veridp_topo.dir/topo/simple_topos.cc.o.d"
  "/root/repo/src/topo/topology.cc" "src/CMakeFiles/veridp_topo.dir/topo/topology.cc.o" "gcc" "src/CMakeFiles/veridp_topo.dir/topo/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veridp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
