file(REMOVE_RECURSE
  "CMakeFiles/veridp_topo.dir/topo/backbone.cc.o"
  "CMakeFiles/veridp_topo.dir/topo/backbone.cc.o.d"
  "CMakeFiles/veridp_topo.dir/topo/fat_tree.cc.o"
  "CMakeFiles/veridp_topo.dir/topo/fat_tree.cc.o.d"
  "CMakeFiles/veridp_topo.dir/topo/simple_topos.cc.o"
  "CMakeFiles/veridp_topo.dir/topo/simple_topos.cc.o.d"
  "CMakeFiles/veridp_topo.dir/topo/topology.cc.o"
  "CMakeFiles/veridp_topo.dir/topo/topology.cc.o.d"
  "libveridp_topo.a"
  "libveridp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
