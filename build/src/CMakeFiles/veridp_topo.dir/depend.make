# Empty dependencies file for veridp_topo.
# This may be replaced when dependencies are built.
