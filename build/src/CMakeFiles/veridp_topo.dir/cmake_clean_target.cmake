file(REMOVE_RECURSE
  "libveridp_topo.a"
)
