# Empty compiler generated dependencies file for veridp_header.
# This may be replaced when dependencies are built.
