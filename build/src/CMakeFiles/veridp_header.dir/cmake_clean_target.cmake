file(REMOVE_RECURSE
  "libveridp_header.a"
)
