file(REMOVE_RECURSE
  "CMakeFiles/veridp_header.dir/header/header_set.cc.o"
  "CMakeFiles/veridp_header.dir/header/header_set.cc.o.d"
  "CMakeFiles/veridp_header.dir/header/packet_header.cc.o"
  "CMakeFiles/veridp_header.dir/header/packet_header.cc.o.d"
  "CMakeFiles/veridp_header.dir/header/wildcard.cc.o"
  "CMakeFiles/veridp_header.dir/header/wildcard.cc.o.d"
  "libveridp_header.a"
  "libveridp_header.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
