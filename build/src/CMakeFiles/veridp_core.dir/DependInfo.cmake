
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veridp/incremental.cc" "src/CMakeFiles/veridp_core.dir/veridp/incremental.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/incremental.cc.o.d"
  "/root/repo/src/veridp/localizer.cc" "src/CMakeFiles/veridp_core.dir/veridp/localizer.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/localizer.cc.o.d"
  "/root/repo/src/veridp/path_builder.cc" "src/CMakeFiles/veridp_core.dir/veridp/path_builder.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/path_builder.cc.o.d"
  "/root/repo/src/veridp/path_table.cc" "src/CMakeFiles/veridp_core.dir/veridp/path_table.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/path_table.cc.o.d"
  "/root/repo/src/veridp/repair.cc" "src/CMakeFiles/veridp_core.dir/veridp/repair.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/repair.cc.o.d"
  "/root/repo/src/veridp/rule_tree.cc" "src/CMakeFiles/veridp_core.dir/veridp/rule_tree.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/rule_tree.cc.o.d"
  "/root/repo/src/veridp/server.cc" "src/CMakeFiles/veridp_core.dir/veridp/server.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/server.cc.o.d"
  "/root/repo/src/veridp/verifier.cc" "src/CMakeFiles/veridp_core.dir/veridp/verifier.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/verifier.cc.o.d"
  "/root/repo/src/veridp/workload.cc" "src/CMakeFiles/veridp_core.dir/veridp/workload.cc.o" "gcc" "src/CMakeFiles/veridp_core.dir/veridp/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veridp_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_header.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
