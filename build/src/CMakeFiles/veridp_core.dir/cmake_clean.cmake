file(REMOVE_RECURSE
  "CMakeFiles/veridp_core.dir/veridp/incremental.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/incremental.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/localizer.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/localizer.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/path_builder.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/path_builder.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/path_table.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/path_table.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/repair.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/repair.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/rule_tree.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/rule_tree.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/server.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/server.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/verifier.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/verifier.cc.o.d"
  "CMakeFiles/veridp_core.dir/veridp/workload.cc.o"
  "CMakeFiles/veridp_core.dir/veridp/workload.cc.o.d"
  "libveridp_core.a"
  "libveridp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
