file(REMOVE_RECURSE
  "libveridp_core.a"
)
