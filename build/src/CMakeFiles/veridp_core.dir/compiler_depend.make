# Empty compiler generated dependencies file for veridp_core.
# This may be replaced when dependencies are built.
