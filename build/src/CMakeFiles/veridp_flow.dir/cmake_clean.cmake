file(REMOVE_RECURSE
  "CMakeFiles/veridp_flow.dir/flow/acl.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/acl.cc.o.d"
  "CMakeFiles/veridp_flow.dir/flow/flow_table.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/flow_table.cc.o.d"
  "CMakeFiles/veridp_flow.dir/flow/match.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/match.cc.o.d"
  "CMakeFiles/veridp_flow.dir/flow/rule.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/rule.cc.o.d"
  "CMakeFiles/veridp_flow.dir/flow/transfer.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/transfer.cc.o.d"
  "CMakeFiles/veridp_flow.dir/flow/walk.cc.o"
  "CMakeFiles/veridp_flow.dir/flow/walk.cc.o.d"
  "libveridp_flow.a"
  "libveridp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
