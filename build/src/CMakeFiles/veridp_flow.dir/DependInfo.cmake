
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/acl.cc" "src/CMakeFiles/veridp_flow.dir/flow/acl.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/acl.cc.o.d"
  "/root/repo/src/flow/flow_table.cc" "src/CMakeFiles/veridp_flow.dir/flow/flow_table.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/flow_table.cc.o.d"
  "/root/repo/src/flow/match.cc" "src/CMakeFiles/veridp_flow.dir/flow/match.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/match.cc.o.d"
  "/root/repo/src/flow/rule.cc" "src/CMakeFiles/veridp_flow.dir/flow/rule.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/rule.cc.o.d"
  "/root/repo/src/flow/transfer.cc" "src/CMakeFiles/veridp_flow.dir/flow/transfer.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/transfer.cc.o.d"
  "/root/repo/src/flow/walk.cc" "src/CMakeFiles/veridp_flow.dir/flow/walk.cc.o" "gcc" "src/CMakeFiles/veridp_flow.dir/flow/walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veridp_header.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
