# Empty dependencies file for veridp_flow.
# This may be replaced when dependencies are built.
