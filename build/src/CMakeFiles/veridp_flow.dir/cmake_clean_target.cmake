file(REMOVE_RECURSE
  "libveridp_flow.a"
)
