# Empty dependencies file for veridp_common.
# This may be replaced when dependencies are built.
