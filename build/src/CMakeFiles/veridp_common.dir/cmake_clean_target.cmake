file(REMOVE_RECURSE
  "libveridp_common.a"
)
