file(REMOVE_RECURSE
  "CMakeFiles/veridp_common.dir/common/ip.cc.o"
  "CMakeFiles/veridp_common.dir/common/ip.cc.o.d"
  "CMakeFiles/veridp_common.dir/common/murmur3.cc.o"
  "CMakeFiles/veridp_common.dir/common/murmur3.cc.o.d"
  "libveridp_common.a"
  "libveridp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
