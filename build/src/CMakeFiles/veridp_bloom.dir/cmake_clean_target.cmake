file(REMOVE_RECURSE
  "libveridp_bloom.a"
)
