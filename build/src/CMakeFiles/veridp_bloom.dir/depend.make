# Empty dependencies file for veridp_bloom.
# This may be replaced when dependencies are built.
