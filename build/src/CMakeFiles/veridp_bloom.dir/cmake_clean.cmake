file(REMOVE_RECURSE
  "CMakeFiles/veridp_bloom.dir/bloom/bloom.cc.o"
  "CMakeFiles/veridp_bloom.dir/bloom/bloom.cc.o.d"
  "libveridp_bloom.a"
  "libveridp_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
