# Empty compiler generated dependencies file for veridp_baseline.
# This may be replaced when dependencies are built.
