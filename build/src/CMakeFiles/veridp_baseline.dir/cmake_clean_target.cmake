file(REMOVE_RECURSE
  "libveridp_baseline.a"
)
