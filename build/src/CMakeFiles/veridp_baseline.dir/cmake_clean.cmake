file(REMOVE_RECURSE
  "CMakeFiles/veridp_baseline.dir/baseline/atpg.cc.o"
  "CMakeFiles/veridp_baseline.dir/baseline/atpg.cc.o.d"
  "CMakeFiles/veridp_baseline.dir/baseline/monocle.cc.o"
  "CMakeFiles/veridp_baseline.dir/baseline/monocle.cc.o.d"
  "libveridp_baseline.a"
  "libveridp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
