# Empty dependencies file for veridp_baseline.
# This may be replaced when dependencies are built.
