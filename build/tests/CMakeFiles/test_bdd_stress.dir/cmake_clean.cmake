file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_stress.dir/test_bdd_stress.cc.o"
  "CMakeFiles/test_bdd_stress.dir/test_bdd_stress.cc.o.d"
  "test_bdd_stress"
  "test_bdd_stress.pdb"
  "test_bdd_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
