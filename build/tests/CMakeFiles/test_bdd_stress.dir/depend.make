# Empty dependencies file for test_bdd_stress.
# This may be replaced when dependencies are built.
