file(REMOVE_RECURSE
  "CMakeFiles/test_match_acl.dir/test_match_acl.cc.o"
  "CMakeFiles/test_match_acl.dir/test_match_acl.cc.o.d"
  "test_match_acl"
  "test_match_acl.pdb"
  "test_match_acl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
