# Empty dependencies file for test_header_set.
# This may be replaced when dependencies are built.
