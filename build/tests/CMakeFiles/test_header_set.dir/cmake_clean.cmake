file(REMOVE_RECURSE
  "CMakeFiles/test_header_set.dir/test_header_set.cc.o"
  "CMakeFiles/test_header_set.dir/test_header_set.cc.o.d"
  "test_header_set"
  "test_header_set.pdb"
  "test_header_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_header_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
