file(REMOVE_RECURSE
  "CMakeFiles/test_murmur3.dir/test_murmur3.cc.o"
  "CMakeFiles/test_murmur3.dir/test_murmur3.cc.o.d"
  "test_murmur3"
  "test_murmur3.pdb"
  "test_murmur3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_murmur3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
