# Empty dependencies file for test_murmur3.
# This may be replaced when dependencies are built.
