file(REMOVE_RECURSE
  "CMakeFiles/test_rule_tree.dir/test_rule_tree.cc.o"
  "CMakeFiles/test_rule_tree.dir/test_rule_tree.cc.o.d"
  "test_rule_tree"
  "test_rule_tree.pdb"
  "test_rule_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
