# Empty dependencies file for test_rule_tree.
# This may be replaced when dependencies are built.
