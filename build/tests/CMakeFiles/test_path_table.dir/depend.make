# Empty dependencies file for test_path_table.
# This may be replaced when dependencies are built.
