file(REMOVE_RECURSE
  "CMakeFiles/test_path_table.dir/test_path_table.cc.o"
  "CMakeFiles/test_path_table.dir/test_path_table.cc.o.d"
  "test_path_table"
  "test_path_table.pdb"
  "test_path_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
