file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_extra.dir/test_baseline_extra.cc.o"
  "CMakeFiles/test_baseline_extra.dir/test_baseline_extra.cc.o.d"
  "test_baseline_extra"
  "test_baseline_extra.pdb"
  "test_baseline_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
