# Empty dependencies file for test_baseline_extra.
# This may be replaced when dependencies are built.
