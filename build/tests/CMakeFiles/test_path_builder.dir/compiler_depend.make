# Empty compiler generated dependencies file for test_path_builder.
# This may be replaced when dependencies are built.
