file(REMOVE_RECURSE
  "CMakeFiles/test_path_builder.dir/test_path_builder.cc.o"
  "CMakeFiles/test_path_builder.dir/test_path_builder.cc.o.d"
  "test_path_builder"
  "test_path_builder.pdb"
  "test_path_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
