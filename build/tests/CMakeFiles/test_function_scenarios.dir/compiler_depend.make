# Empty compiler generated dependencies file for test_function_scenarios.
# This may be replaced when dependencies are built.
