file(REMOVE_RECURSE
  "CMakeFiles/test_function_scenarios.dir/test_function_scenarios.cc.o"
  "CMakeFiles/test_function_scenarios.dir/test_function_scenarios.cc.o.d"
  "test_function_scenarios"
  "test_function_scenarios.pdb"
  "test_function_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_function_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
