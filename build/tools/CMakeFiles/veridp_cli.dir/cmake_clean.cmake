file(REMOVE_RECURSE
  "CMakeFiles/veridp_cli.dir/veridp_cli.cc.o"
  "CMakeFiles/veridp_cli.dir/veridp_cli.cc.o.d"
  "veridp_cli"
  "veridp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veridp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
