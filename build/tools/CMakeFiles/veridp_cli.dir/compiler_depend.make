# Empty compiler generated dependencies file for veridp_cli.
# This may be replaced when dependencies are built.
