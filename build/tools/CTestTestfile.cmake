# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_topo_toy "/root/repo/build/tools/veridp_cli" "topo" "toy")
set_tests_properties(cli_topo_toy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pathtable_linear "/root/repo/build/tools/veridp_cli" "pathtable" "linear")
set_tests_properties(cli_pathtable_linear PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_monitor_blackhole "/root/repo/build/tools/veridp_cli" "monitor" "fat4" "--fault" "blackhole" "--seed" "3" "--repair")
set_tests_properties(cli_monitor_blackhole PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_monitor_rewire "/root/repo/build/tools/veridp_cli" "monitor" "fat4" "--fault" "rewire" "--seed" "3" "--repair")
set_tests_properties(cli_monitor_rewire PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/veridp_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
