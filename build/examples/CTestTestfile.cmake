# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_waypoint_firewall "/root/repo/build/examples/waypoint_firewall")
set_tests_properties(example_waypoint_firewall PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_engineering "/root/repo/build/examples/traffic_engineering")
set_tests_properties(example_traffic_engineering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_localization_demo "/root/repo/build/examples/fault_localization_demo")
set_tests_properties(example_fault_localization_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auto_repair "/root/repo/build/examples/auto_repair")
set_tests_properties(example_auto_repair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nat_gateway "/root/repo/build/examples/nat_gateway")
set_tests_properties(example_nat_gateway PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
