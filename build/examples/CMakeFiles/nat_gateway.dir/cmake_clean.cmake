file(REMOVE_RECURSE
  "CMakeFiles/nat_gateway.dir/nat_gateway.cpp.o"
  "CMakeFiles/nat_gateway.dir/nat_gateway.cpp.o.d"
  "nat_gateway"
  "nat_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
