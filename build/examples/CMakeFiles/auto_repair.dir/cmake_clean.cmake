file(REMOVE_RECURSE
  "CMakeFiles/auto_repair.dir/auto_repair.cpp.o"
  "CMakeFiles/auto_repair.dir/auto_repair.cpp.o.d"
  "auto_repair"
  "auto_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
