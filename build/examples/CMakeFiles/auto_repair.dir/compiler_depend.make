# Empty compiler generated dependencies file for auto_repair.
# This may be replaced when dependencies are built.
