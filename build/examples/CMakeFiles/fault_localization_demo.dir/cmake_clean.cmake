file(REMOVE_RECURSE
  "CMakeFiles/fault_localization_demo.dir/fault_localization_demo.cpp.o"
  "CMakeFiles/fault_localization_demo.dir/fault_localization_demo.cpp.o.d"
  "fault_localization_demo"
  "fault_localization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_localization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
