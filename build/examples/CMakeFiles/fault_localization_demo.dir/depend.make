# Empty dependencies file for fault_localization_demo.
# This may be replaced when dependencies are built.
