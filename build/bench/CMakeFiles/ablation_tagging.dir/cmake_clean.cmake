file(REMOVE_RECURSE
  "CMakeFiles/ablation_tagging.dir/ablation_tagging.cc.o"
  "CMakeFiles/ablation_tagging.dir/ablation_tagging.cc.o.d"
  "ablation_tagging"
  "ablation_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
