# Empty compiler generated dependencies file for ablation_tagging.
# This may be replaced when dependencies are built.
