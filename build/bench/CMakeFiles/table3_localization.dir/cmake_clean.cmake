file(REMOVE_RECURSE
  "CMakeFiles/table3_localization.dir/table3_localization.cc.o"
  "CMakeFiles/table3_localization.dir/table3_localization.cc.o.d"
  "table3_localization"
  "table3_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
