# Empty dependencies file for table3_localization.
# This may be replaced when dependencies are built.
