# Empty compiler generated dependencies file for ablation_parallel_verify.
# This may be replaced when dependencies are built.
