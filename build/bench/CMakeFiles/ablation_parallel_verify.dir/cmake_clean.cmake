file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_verify.dir/ablation_parallel_verify.cc.o"
  "CMakeFiles/ablation_parallel_verify.dir/ablation_parallel_verify.cc.o.d"
  "ablation_parallel_verify"
  "ablation_parallel_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
