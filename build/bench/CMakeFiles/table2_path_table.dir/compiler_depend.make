# Empty compiler generated dependencies file for table2_path_table.
# This may be replaced when dependencies are built.
