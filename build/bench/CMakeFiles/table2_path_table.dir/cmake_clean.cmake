file(REMOVE_RECURSE
  "CMakeFiles/table2_path_table.dir/table2_path_table.cc.o"
  "CMakeFiles/table2_path_table.dir/table2_path_table.cc.o.d"
  "table2_path_table"
  "table2_path_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_path_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
