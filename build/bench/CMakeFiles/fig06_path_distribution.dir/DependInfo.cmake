
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_path_distribution.cc" "bench/CMakeFiles/fig06_path_distribution.dir/fig06_path_distribution.cc.o" "gcc" "bench/CMakeFiles/fig06_path_distribution.dir/fig06_path_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veridp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_header.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veridp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
