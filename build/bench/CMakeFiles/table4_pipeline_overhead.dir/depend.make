# Empty dependencies file for table4_pipeline_overhead.
# This may be replaced when dependencies are built.
