file(REMOVE_RECURSE
  "CMakeFiles/fig09_sampling_latency.dir/fig09_sampling_latency.cc.o"
  "CMakeFiles/fig09_sampling_latency.dir/fig09_sampling_latency.cc.o.d"
  "fig09_sampling_latency"
  "fig09_sampling_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sampling_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
