file(REMOVE_RECURSE
  "CMakeFiles/fig12_false_negative.dir/fig12_false_negative.cc.o"
  "CMakeFiles/fig12_false_negative.dir/fig12_false_negative.cc.o.d"
  "fig12_false_negative"
  "fig12_false_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_false_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
