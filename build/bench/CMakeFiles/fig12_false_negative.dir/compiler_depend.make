# Empty compiler generated dependencies file for fig12_false_negative.
# This may be replaced when dependencies are built.
