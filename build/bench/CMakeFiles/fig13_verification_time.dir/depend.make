# Empty dependencies file for fig13_verification_time.
# This may be replaced when dependencies are built.
