# Empty compiler generated dependencies file for ablation_header_sets.
# This may be replaced when dependencies are built.
