file(REMOVE_RECURSE
  "CMakeFiles/ablation_header_sets.dir/ablation_header_sets.cc.o"
  "CMakeFiles/ablation_header_sets.dir/ablation_header_sets.cc.o.d"
  "ablation_header_sets"
  "ablation_header_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_header_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
